package rtree

import "repro/internal/geom"

// This file is the batch read path over the flat node slabs: range and
// nearest-neighbor traversals that test all <=M entries of a node in one
// tight loop over contiguous float64 blocks, with caller-owned scratch so
// steady-state queries allocate nothing.

// FlatMap is the per-dimension affine action y_i = C[i]*x_i + D[i] a batch
// traversal applies to every node slab — the same map transform.AffineMap
// describes, restated here so the tree stays free of transform imports.
// Angular flags circle-valued dimensions for the overlap predicate (tested
// modulo 2*pi); Identity short-circuits the transform entirely, letting
// traversals read node slabs in place.
type FlatMap struct {
	C, D     []float64
	Angular  []bool
	Identity bool
}

// Scratch is the reusable working memory of one batch traversal: the DFS
// stack, the transformed-slab buffer, the NN priority queue, and the batch
// distance buffer. A Scratch may be reused across any number of
// traversals, but never concurrently.
type Scratch struct {
	stack []*node
	tbuf  []float64
	heap  []flatHeapEntry
	dists []float64
}

// FlatVisitor consumes the surviving leaf entries of a batch range
// traversal. tlo and thi are the entry's transformed corners — views into
// traversal scratch, valid only for the duration of the call (leaf entries
// are typically degenerate, making tlo the transformed point). Returning
// false stops the traversal.
type FlatVisitor interface {
	VisitFlat(id int64, tlo, thi []float64) bool
}

// FlatNNVisitor consumes items of a batch nearest-neighbor traversal in
// non-decreasing order of their (lower-bounded) distance. Returning false
// stops the traversal.
type FlatNNVisitor interface {
	VisitNear(id int64, distSq float64) bool
}

// FlatNNKernel supplies the geometry of a batch nearest-neighbor
// traversal: batched lower bounds over transformed child rectangles and
// batched exact (partial) distances over transformed leaf points. Both
// receive entry-major blocks of count*dims values and must fill
// out[:count].
type FlatNNKernel interface {
	// LowerBatch lower-bounds the distance from the query to anything
	// inside each transformed rectangle (lo/hi corner blocks).
	LowerBatch(lo, hi []float64, count, dims int, out []float64)
	// PointBatch computes the exact per-item distance for each transformed
	// leaf point (the lo corner of a degenerate rectangle).
	PointBatch(lo []float64, count, dims int, out []float64)
}

// transformSlab maps a node slab through fm into the lows/highs halves of
// dst, mirroring transform.AffineMap.ApplyRect exactly: per dimension
// y = c*x + d with corner swap where a negative stretch flips the
// interval, and no angular renormalization.
func transformSlab(slab, dstLo, dstHi []float64, count, dims int, C, D []float64) {
	srcLo, srcHi := slab[:count*dims], slab[count*dims:]
	for e := 0; e < count; e++ {
		off := e * dims
		for j := 0; j < dims; j++ {
			c, d := C[j], D[j]
			lo := c*srcLo[off+j] + d
			hi := c*srcHi[off+j] + d
			if lo > hi {
				lo, hi = hi, lo
			}
			dstLo[off+j], dstHi[off+j] = lo, hi
		}
	}
}

// flatOverlaps mirrors geom.IntersectsMixed over slab views: linear
// interval intersection everywhere except the angular dimensions, which
// wrap modulo 2*pi.
func flatOverlaps(lo, hi, qlo, qhi []float64, dims int, angular []bool) bool {
	if angular == nil {
		for j := 0; j < dims; j++ {
			if hi[j] < qlo[j] || qhi[j] < lo[j] {
				return false
			}
		}
		return true
	}
	for j := 0; j < dims; j++ {
		if j < len(angular) && angular[j] {
			if !geom.AngularIntervalsOverlap(lo[j], hi[j], qlo[j], qhi[j]) {
				return false
			}
		} else if hi[j] < qlo[j] || qhi[j] < lo[j] {
			return false
		}
	}
	return true
}

// nodeSlabs resolves a node's transformed corner blocks: the node's own
// slab under an identity map, the scratch buffer otherwise. The fallback
// rebuild covers a slab that somehow went stale — correctness never
// depends on the sync sites, only speed does.
func (t *Tree) nodeSlabs(n *node, fm *FlatMap, sc *Scratch) (lows, highs []float64) {
	c := len(n.entries)
	if len(n.flat) != 2*c*t.dims {
		n.syncFlat(t.dims)
	}
	if fm.Identity {
		return n.flat[:c*t.dims], n.flat[c*t.dims:]
	}
	need := 2 * c * t.dims
	if cap(sc.tbuf) < need {
		sc.tbuf = make([]float64, need)
	} else {
		sc.tbuf = sc.tbuf[:need]
	}
	lows, highs = sc.tbuf[:c*t.dims], sc.tbuf[c*t.dims:]
	transformSlab(n.flat, lows, highs, c, t.dims, fm.C, fm.D)
	return lows, highs
}

// FlatRange is the batch form of TransformedSearch: a depth-first
// traversal that transforms each node's slab in one pass, tests all
// entries against the query box [qlo, qhi] in one tight loop, and emits
// surviving leaf entries to v. It visits exactly the nodes and entries
// the per-entry traversal visits, in the same order.
func (t *Tree) FlatRange(qlo, qhi []float64, fm FlatMap, sc *Scratch, v FlatVisitor) SearchStats {
	var st SearchStats
	dims := t.dims
	sc.stack = append(sc.stack[:0], t.root)
	for len(sc.stack) > 0 {
		n := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		st.NodesVisited++
		c := len(n.entries)
		if c == 0 {
			continue
		}
		lows, highs := t.nodeSlabs(n, &fm, sc)
		if n.leaf() {
			for e := 0; e < c; e++ {
				st.EntriesTested++
				off := e * dims
				if !flatOverlaps(lows[off:off+dims], highs[off:off+dims], qlo, qhi, dims, fm.Angular) {
					continue
				}
				if !v.VisitFlat(n.entries[e].id, lows[off:off+dims], highs[off:off+dims]) {
					return st
				}
			}
			continue
		}
		// Push children in reverse so pop order matches the recursive
		// traversal's first-entry-first descent.
		for e := c - 1; e >= 0; e-- {
			st.EntriesTested++
			off := e * dims
			if flatOverlaps(lows[off:off+dims], highs[off:off+dims], qlo, qhi, dims, fm.Angular) {
				sc.stack = append(sc.stack, n.entries[e].child)
			}
		}
	}
	return st
}

// flatHeapEntry is one prioritized node or item of a batch best-first
// nearest-neighbor traversal.
type flatHeapEntry struct {
	dist float64
	node *node // nil for leaf items
	id   int64
}

func flatHeapPush(h *[]flatHeapEntry, e flatHeapEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].dist <= q[i].dist {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
}

func flatHeapPop(h *[]flatHeapEntry) flatHeapEntry {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(q) {
			break
		}
		m := l
		if r < len(q) && q[r].dist < q[l].dist {
			m = r
		}
		if q[i].dist <= q[m].dist {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// NearestFlat is the batch form of NearestScan: best-first traversal with
// a typed binary heap in caller scratch, node slabs transformed in one
// pass, and per-node batched kernel calls for lower bounds and item
// distances. Items reach v in non-decreasing distance order, interleaved
// correctly with node expansion, so stopping early leaves the rest of the
// tree untouched.
func (t *Tree) NearestFlat(fm FlatMap, kern FlatNNKernel, sc *Scratch, v FlatNNVisitor) SearchStats {
	var st SearchStats
	if t.size == 0 {
		return st
	}
	dims := t.dims
	sc.heap = sc.heap[:0]
	flatHeapPush(&sc.heap, flatHeapEntry{dist: 0, node: t.root})
	for len(sc.heap) > 0 {
		head := flatHeapPop(&sc.heap)
		if head.node == nil {
			if !v.VisitNear(head.id, head.dist) {
				return st
			}
			continue
		}
		n := head.node
		st.NodesVisited++
		c := len(n.entries)
		if c == 0 {
			continue
		}
		lows, highs := t.nodeSlabs(n, &fm, sc)
		if cap(sc.dists) < c {
			sc.dists = make([]float64, c)
		} else {
			sc.dists = sc.dists[:c]
		}
		if n.leaf() {
			kern.PointBatch(lows, c, dims, sc.dists)
			for e := 0; e < c; e++ {
				st.EntriesTested++
				flatHeapPush(&sc.heap, flatHeapEntry{dist: sc.dists[e], id: n.entries[e].id})
			}
		} else {
			kern.LowerBatch(lows, highs, c, dims, sc.dists)
			for e := 0; e < c; e++ {
				st.EntriesTested++
				flatHeapPush(&sc.heap, flatHeapEntry{dist: sc.dists[e], node: n.entries[e].child})
			}
		}
	}
	return st
}
