package rtree

import "fmt"

// CheckInvariants validates the structural invariants of the tree and
// returns a descriptive error if any is violated. It is exported for tests
// (including property-based tests that interleave inserts and deletes) and
// for debugging; it is O(n) and not meant for hot paths.
//
// Checked invariants:
//  1. Every node except the root has between MinEntries and MaxEntries
//     entries; the root has at most MaxEntries (and at least 2 if internal).
//  2. Every internal entry's rectangle equals the MBR of its child.
//  3. All leaves are at level 0 and node levels decrease by exactly one per
//     edge.
//  4. The recorded size matches the number of leaf entries, and the
//     recorded height matches the root level + 1.
//  5. Every node's flat MBR slab (the struct-of-arrays copy batch
//     traversals scan) agrees cell for cell with its entry rectangles.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	if t.height != t.root.level+1 {
		return fmt.Errorf("rtree: height %d != root level+1 %d", t.height, t.root.level+1)
	}
	if !t.root.leaf() && len(t.root.entries) < 2 {
		return fmt.Errorf("rtree: internal root has %d entries", len(t.root.entries))
	}
	count, err := t.checkNode(t.root, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries found", t.size, count)
	}
	return nil
}

func (t *Tree) checkNode(n *node, isRoot bool) (int, error) {
	if len(n.entries) > t.maxEntries {
		return 0, fmt.Errorf("rtree: node at level %d has %d > max %d entries", n.level, len(n.entries), t.maxEntries)
	}
	if !isRoot && len(n.entries) < t.minEntries {
		return 0, fmt.Errorf("rtree: node at level %d has %d < min %d entries", n.level, len(n.entries), t.minEntries)
	}
	if err := n.checkFlat(t.dims); err != nil {
		return 0, err
	}
	if n.leaf() {
		return len(n.entries), nil
	}
	total := 0
	for i, e := range n.entries {
		if e.child == nil {
			return 0, fmt.Errorf("rtree: internal entry %d at level %d has nil child", i, n.level)
		}
		if e.child.level != n.level-1 {
			return 0, fmt.Errorf("rtree: child level %d under node level %d", e.child.level, n.level)
		}
		if want := e.child.mbr(); !e.rect.Equal(want) {
			return 0, fmt.Errorf("rtree: stale MBR at level %d entry %d: have %v want %v", n.level, i, e.rect, want)
		}
		c, err := t.checkNode(e.child, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// checkFlat verifies the flat slab mirrors the entry rectangles exactly.
func (n *node) checkFlat(dims int) error {
	c := len(n.entries)
	if len(n.flat) != 2*c*dims {
		return fmt.Errorf("rtree: flat slab has %d cells, want %d (level %d, %d entries)", len(n.flat), 2*c*dims, n.level, c)
	}
	lows, highs := n.flat[:c*dims], n.flat[c*dims:]
	for i, e := range n.entries {
		for j := 0; j < dims; j++ {
			if lows[i*dims+j] != e.rect.Lo[j] || highs[i*dims+j] != e.rect.Hi[j] {
				return fmt.Errorf("rtree: stale flat slab at level %d entry %d dim %d", n.level, i, j)
			}
		}
	}
	return nil
}
