package core

import (
	"sync"

	"repro/internal/index"
)

// execArena is the reusable working memory of one hot-path query
// execution: the batch index scratch, the candidate-ID and page-view
// buffers the verification loop cycles through, the NN visitor state, and
// a private top-k set. Arenas live in a process-wide pool; an execution
// borrows one, runs entirely inside it, copies answers out into the
// caller's result slice (results hold only value types — int64, string
// header, float64 — so nothing aliases arena memory), and returns it.
// Steady state, a planned single-store execution allocates nothing.
//
// An arena is never shared: each borrower owns it exclusively between
// getArena and putArena, which is what makes the buffers race-free under
// concurrent queries (each goroutine borrows its own).
type execArena struct {
	sc    index.Scratch
	ids   []int64
	pages [][]byte
	top   topK
	nv    nnVisit
	// st is the execution's stats accumulator. It lives in the arena
	// because the NN visitor (also arena-held) keeps a pointer to it — a
	// stack-local ExecStats would escape and cost one heap allocation per
	// query. Callers receive a value copy; resetStats drops the old copy's
	// slice references before reuse.
	st ExecStats
}

// resetStats clears and returns the arena's stats accumulator for a fresh
// execution.
func (ar *execArena) resetStats() *ExecStats {
	ar.st = ExecStats{}
	return &ar.st
}

var arenaPool = sync.Pool{New: func() any { return new(execArena) }}

func getArena() *execArena { return arenaPool.Get().(*execArena) }

func putArena(ar *execArena) {
	// Drop object references before pooling: retained capacity is the
	// point (that is what makes reuse allocation-free), but stale pointers
	// into a closed store's pages or a finished query's visitor state must
	// not pin those objects for the pool's lifetime.
	ar.nv = nnVisit{}
	ar.st = ExecStats{}
	pages := ar.pages[:cap(ar.pages)]
	for i := range pages {
		pages[i] = nil
	}
	ar.pages = ar.pages[:0]
	arenaPool.Put(ar)
}
