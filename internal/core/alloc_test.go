// Allocation-regression gate and arena-safety stress for the zero-alloc
// hot path. TestHotPathZeroAlloc is the CI gate: a warm planned
// range/NN execution through the Into entry points must allocate
// nothing (telemetry off, result buffer reused), so any future edit
// that reintroduces a per-query allocation fails the build rather than
// silently taxing every query. TestArenaSafetyRace is the memory-safety
// half of the same contract: pooled arenas must never leak into
// returned results.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/plan"
	"repro/internal/telemetry"
	"repro/internal/transform"
)

// allocStore builds a small warm store with planted near-duplicates so
// selective queries have non-empty answers.
func allocStore(tb testing.TB, n, length int, opts Options) (*DB, [][]float64) {
	tb.Helper()
	db, err := NewDB(length, opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	r := rand.New(rand.NewSource(7))
	data := make([][]float64, n)
	names := make([]string, n)
	for i := range data {
		if i >= n/2 {
			src := data[i-n/2]
			dup := make([]float64, length)
			for j := range dup {
				dup[j] = src[j] + r.NormFloat64()*0.05
			}
			data[i] = dup
		} else {
			data[i] = dataset.RandomWalk(r, length)
		}
		names[i] = fmt.Sprintf("A%04d", i)
	}
	if err := db.InsertBulk(names, data); err != nil {
		tb.Fatal(err)
	}
	return db, data
}

// TestHotPathZeroAlloc pins warm planned executions at zero allocations
// per operation. The contract it states: with telemetry off, a plan in
// hand, and a result buffer with capacity, ExecRangeInto and ExecNNInto
// touch only pooled arena scratch — every byte of per-query state lives
// in the arena or the caller's buffer. The disk-backed variant extends
// the contract to the buffer pool: a warm execution whose working set is
// resident (all pool hits — pin, view, release) allocates nothing either.
func TestHotPathZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"memory", Options{}},
		{"disk", Options{CachePages: 2048}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.opts.CachePages > 0 {
				tc.opts.Backing = t.TempDir()
			}
			testHotPathZeroAlloc(t, tc.opts)
		})
	}
}

func testHotPathZeroAlloc(t *testing.T, opts Options) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates counters")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs without -race (make alloc-gate)")
	}
	db, data := allocStore(t, 512, 64, opts)
	id := transform.Identity(64)

	wasEnabled := telemetry.Enabled()
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(wasEnabled)

	check := func(name string, run func() int) {
		t.Helper()
		// Warm: settle the arena pool, grow scratch and result capacity.
		want := run()
		for i := 0; i < 32; i++ {
			run()
		}
		allocs := testing.AllocsPerRun(100, func() {
			if got := run(); got != want {
				t.Fatalf("%s: warm run returned %d results, first returned %d", name, got, want)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on the warm hot path, want 0", name, allocs)
		}
		if want == 0 {
			t.Errorf("%s: zero results — the gate is not exercising verification", name)
		}
	}

	rq := RangeQuery{Values: data[3], Eps: 1.0, Transform: id}
	for _, strat := range []plan.Strategy{plan.Index, plan.ScanFreq} {
		pl, err := db.PlanRange(rq, strat)
		if err != nil {
			t.Fatal(err)
		}
		var dst []Result
		check(fmt.Sprintf("ExecRangeInto/%v", strat), func() int {
			res, _, err := db.ExecRangeInto(rq, pl, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
			dst = res
			return len(res)
		})
	}

	nq := NNQuery{Values: data[5], K: 8, Transform: id}
	for _, strat := range []plan.Strategy{plan.Index, plan.ScanFreq} {
		pl, err := db.PlanNN(nq, strat)
		if err != nil {
			t.Fatal(err)
		}
		var dst []Result
		check(fmt.Sprintf("ExecNNInto/%v", strat), func() int {
			res, _, err := db.ExecNNInto(nq, pl, dst[:0])
			if err != nil {
				t.Fatal(err)
			}
			dst = res
			return len(res)
		})
	}

	// An unforced auto plan additionally runs the planner feedback and the
	// scan-side exploration probe — those must be allocation-free too.
	pl, err := db.PlanRange(rq, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	var dst []Result
	check("ExecRangeInto/auto", func() int {
		res, _, err := db.ExecRangeInto(rq, pl, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = res
		return len(res)
	})
}

// TestArenaSafetyRace hammers the pooled-arena hot path from many
// goroutines under the race detector and plants a mutate-after-return
// canary: results handed back by the engine are the caller's property,
// so corrupting them must never bleed into another query's answer (it
// would if an arena-owned slice escaped through the copy-out boundary).
func TestArenaSafetyRace(t *testing.T) {
	db, data := allocStore(t, 256, 32, Options{})
	id := transform.Identity(32)

	rq := RangeQuery{Values: data[2], Eps: 1.0, Transform: id}
	nq := NNQuery{Values: data[4], K: 5, Transform: id}
	rpl, err := db.PlanRange(rq, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	npl, err := db.PlanNN(nq, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	wantRange, _, err := db.ExecRangeInto(rq, rpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantNN, _, err := db.ExecNNInto(nq, npl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRange) == 0 || len(wantNN) == 0 {
		t.Fatal("stress queries answer nothing; nothing to corrupt")
	}

	same := func(a, b []Result) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []Result
			for i := 0; i < iters; i++ {
				var got []Result
				var err error
				if (w+i)%2 == 0 {
					got, _, err = db.ExecRangeInto(rq, rpl, dst[:0])
					if err == nil && !same(got, wantRange) {
						err = fmt.Errorf("worker %d iter %d: range answer diverged", w, i)
					}
				} else {
					got, _, err = db.ExecNNInto(nq, npl, dst[:0])
					if err == nil && !same(got, wantNN) {
						err = fmt.Errorf("worker %d iter %d: NN answer diverged", w, i)
					}
				}
				if err != nil {
					errs <- err
					return
				}
				// Canary: trash the returned results. If any of this memory
				// is still referenced by a pooled arena or by the store, a
				// concurrent (or the next) query will return the poison and
				// fail the divergence check above.
				for j := range got {
					got[j] = Result{ID: -1, Name: "poisoned", Dist: math.Inf(-1)}
				}
				dst = got
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The store itself must be unharmed after the stampede.
	final, _, err := db.ExecRangeInto(rq, rpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !same(final, wantRange) {
		t.Fatalf("post-stress answer diverged:\n got %v\nwant %v", final, wantRange)
	}
}
