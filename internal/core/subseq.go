package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/stats"
)

// SubseqResult is one subsequence-scan answer: the stored series, the
// offset of its best-matching window, and the window's Euclidean distance
// to the query.
type SubseqResult struct {
	ID     int64
	Name   string
	Offset int
	Dist   float64
}

// SubsequenceScan finds, for every stored series, the contiguous window of
// the query's length nearest to the query (raw values, no normalization),
// returning the series whose best window is within eps — the comparison of
// the paper's Example 1.2 ("the Euclidean distance between p and any
// subsequence of length four of s"), run across the whole relation. This
// is a time-domain scan (the whole-sequence k-index does not index
// subsequences; FRM94's ST-index is the follow-up work that does); inner
// window sums abandon against the best window so far. Results sort by
// distance.
func (db *DB) SubsequenceScan(q []float64, eps float64) ([]SubseqResult, ExecStats, error) {
	var st ExecStats
	if len(q) == 0 || len(q) > db.length {
		return nil, st, fmt.Errorf("core: subsequence query length %d out of range [1, %d]", len(q), db.length)
	}
	if eps < 0 {
		return nil, st, fmt.Errorf("core: negative eps %g", eps)
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()
	var out []SubseqResult
	for _, id := range db.ids {
		st.Candidates++
		vals, err := db.Series(id)
		if err != nil {
			return nil, st, err
		}
		off, dist := series.BestSubsequenceMatch(vals, q)
		st.DistanceTerms += int64(len(q)) // window sums, order-of-magnitude accounting
		if dist <= eps {
			out = append(out, SubseqResult{ID: id, Name: db.names[id], Offset: off, Dist: dist})
		}
	}
	sortSubseq(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// Update replaces the values stored under an existing name, reindexing the
// series (equivalent to Delete followed by Insert, preserving the name).
// It returns the new internal ID.
func (db *DB) Update(name string, values []float64) (int64, error) {
	id, ok := db.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown series %q", name)
	}
	// Validate the replacement before touching the stored series, so a
	// rejected update cannot destroy data.
	if len(values) != db.length {
		return 0, fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values), db.length)
	}
	if _, err := db.schema.Extract(values); err != nil {
		return 0, err
	}
	old, err := db.Series(id)
	if err != nil {
		return 0, err
	}
	db.Delete(name)
	newID, err := db.Insert(name, values)
	if err != nil {
		// Should be unreachable after validation; restore the old series.
		if _, rerr := db.Insert(name, old); rerr != nil {
			return 0, fmt.Errorf("core: update of %q failed (%v) and restore failed: %w", name, err, rerr)
		}
		return 0, err
	}
	return newID, nil
}

// Compact rebuilds the paged relations — dropping records orphaned by
// Delete and Update — and repacks the k-index with an STR bulk load over
// the live feature points, undoing the node-occupancy decay of a long
// insert/delete history. Live IDs, names, and feature points are
// untouched. A disk-backed store builds the next relation generation's
// page files alongside the live pair and swaps atomically from the
// caller's perspective; the old generation's scratch files are removed on
// success. Memory stores keep their configured buffer pools across the
// rebuild. Returns the number of pages reclaimed.
func (db *DB) Compact() (pagesReclaimed int, err error) {
	// Materialize any spectra deferred by streaming appends, so the
	// rebuilt relation holds current records.
	if err := db.flushSpectra(); err != nil {
		return 0, err
	}
	before := db.timeRel.Pages() + db.freqRel.Pages()
	newTime, newFreq, err := newRelationPair(db.opts, db.gen+1)
	if err != nil {
		return 0, err
	}
	abort := func() {
		newTime.Close()
		newFreq.Close()
	}
	if db.opts.BufferPoolPages > 0 && db.opts.Backing == "" {
		if err := newTime.AttachPool(db.opts.BufferPoolPages); err != nil {
			abort()
			return 0, err
		}
		if err := newFreq.AttachPool(db.opts.BufferPoolPages); err != nil {
			abort()
			return 0, err
		}
	}
	ids := append([]int64(nil), db.ids...)
	points := make([]geom.Point, len(ids))
	for i, id := range ids {
		vals, err := db.timeRel.Get(id)
		if err != nil {
			abort()
			return 0, err
		}
		if err := newTime.Insert(id, vals); err != nil {
			abort()
			return 0, err
		}
		spec, err := db.freqRel.Get(id)
		if err != nil {
			abort()
			return 0, err
		}
		if err := newFreq.Insert(id, spec); err != nil {
			abort()
			return 0, err
		}
		points[i] = db.points[id]
	}
	ix, err := index.New(db.schema, db.opts.RTree)
	if err != nil {
		abort()
		return 0, err
	}
	if err := ix.BulkLoad(points, ids); err != nil {
		abort()
		return 0, err
	}
	oldTime, oldFreq := db.timeRel, db.freqRel
	db.timeRel, db.freqRel = newTime, newFreq
	db.idx = ix
	db.gen++
	oldTime.Close()
	oldFreq.Close()
	return before - (newTime.Pages() + newFreq.Pages()), nil
}
