// Per-operation cost benchmarks for the read hot path: ns/op, B/op and
// allocs/op per query kind on a warm store, measured as paired-chunk
// medians under GOMAXPROCS 1 and 4.
//
// Three entry points share one workload:
//
//   - BenchmarkExecHotPath — standard go-bench surface with ReportAllocs,
//     exercised once per CI run (-benchtime=1x) so it cannot rot;
//   - TestPerfBaseline — gated by TSQ_BENCH_BASELINE; captures the
//     pre-change per-op costs to the given JSON path (run once before a
//     perf pass, checked in as bench/BENCH6_BASELINE.json);
//   - TestPerfReport — gated by TSQ_BENCH_OUT; re-measures, merges the
//     stored baseline, and writes the report `make bench-perf` publishes
//     as BENCH_6.json.
//
// Timing runs with telemetry enabled (the production default, so the
// numbers include the metrics tax); allocation counts run with telemetry
// disabled, because the span/metrics surface is the one deliberate
// steady-state allocator left on the hot path.
package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/plan"
	"repro/internal/telemetry"
	"repro/internal/transform"
)

const (
	perfSeries  = 4096
	perfLen     = 128
	perfSeed    = 1997
	perfQueries = 16
	perfK       = 10
	perfEps     = 1.0
	// perfEpsMavg is the radius of the transformed kind: its queries are
	// smoothed series (D(T(nf(x)), nf(q)) compares against a raw query),
	// whose nearest stored series sit a little further out.
	perfEpsMavg = 1.5
)

// perfStore builds the warm store every perf entry point measures against:
// seeded random walks with a planted block of near-duplicates so selective
// range queries have answers.
func perfStore(tb testing.TB) (*DB, [][]float64) {
	tb.Helper()
	db, err := NewDB(perfLen, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	r := rand.New(rand.NewSource(perfSeed))
	data := make([][]float64, perfSeries)
	names := make([]string, perfSeries)
	for i := range data {
		if i >= perfSeries/2 && i < perfSeries/2+perfSeries/10 {
			src := data[i-perfSeries/2]
			dup := make([]float64, perfLen)
			for j := range dup {
				dup[j] = src[j] + r.NormFloat64()*0.1
			}
			data[i] = dup
		} else {
			data[i] = dataset.RandomWalk(r, perfLen)
		}
		names[i] = fmt.Sprintf("W%04d", i)
	}
	if err := db.InsertBulk(names, data); err != nil {
		tb.Fatal(err)
	}
	return db, data
}

// perfQueryVecs returns slightly perturbed copies of stored series, so
// every query has at least its source (and that source's near-duplicate)
// in range.
func perfQueryVecs(data [][]float64) [][]float64 {
	r := rand.New(rand.NewSource(perfSeed + 1))
	qs := make([][]float64, perfQueries)
	for i := range qs {
		src := data[i]
		q := make([]float64, perfLen)
		for j := range q {
			q[j] = src[j] + r.NormFloat64()*0.02
		}
		qs[i] = q
	}
	return qs
}

// perfKind is one measured query kind: a pre-planned op the measurement
// loop can run repeatedly with no per-op planning cost.
type perfKind struct {
	name string
	// run executes op i and returns the number of results it produced.
	run func(i int) int
}

// perfKinds pre-plans the benchmark's query mix against db. Plans are
// built once per query vector; the hot loop is ExecRange/ExecNN only.
func perfKinds(tb testing.TB, db *DB, data [][]float64) []perfKind {
	tb.Helper()
	qvecs := perfQueryVecs(data)
	id := transform.Identity(perfLen)
	mavg := transform.MovingAverage(perfLen, 8)

	type rangeOp struct {
		q  RangeQuery
		pl *plan.Plan
	}
	type nnOp struct {
		q  NNQuery
		pl *plan.Plan
	}
	planRangeOps := func(vecs [][]float64, tr transform.T, eps float64, want plan.Strategy) []rangeOp {
		ops := make([]rangeOp, len(vecs))
		for i, v := range vecs {
			q := RangeQuery{Values: v, Eps: eps, Transform: tr}
			pl, err := db.PlanRange(q, want)
			if err != nil {
				tb.Fatal(err)
			}
			ops[i] = rangeOp{q: q, pl: pl}
		}
		return ops
	}
	planNNOps := func(vecs [][]float64, tr transform.T, want plan.Strategy) []nnOp {
		ops := make([]nnOp, len(vecs))
		for i, v := range vecs {
			q := NNQuery{Values: v, K: perfK, Transform: tr}
			pl, err := db.PlanNN(q, want)
			if err != nil {
				tb.Fatal(err)
			}
			ops[i] = nnOp{q: q, pl: pl}
		}
		return ops
	}

	riOps := planRangeOps(qvecs, id, perfEps, plan.Index)
	rsOps := planRangeOps(qvecs, id, perfEps, plan.ScanFreq)
	// The transformed kind queries with smoothed series: the query-language
	// semantics compare T(nf(x)) against nf(q), so a raw-walk q matches
	// nothing under mavg.
	mavgVecs := make([][]float64, perfQueries)
	for i := range mavgVecs {
		mavgVecs[i] = mavg.ApplyTime(data[i])
	}
	rmOps := planRangeOps(mavgVecs, mavg, perfEpsMavg, plan.Index)
	niOps := planNNOps(qvecs, id, plan.Index)
	nsOps := planNNOps(qvecs, id, plan.ScanFreq)

	// Each kind reuses one result buffer across ops via the Into entry
	// points — the steady-state calling convention the zero-allocation
	// contract is stated for (see TestHotPathZeroAlloc).
	runRange := func(ops []rangeOp) func(i int) int {
		var dst []Result
		return func(i int) int {
			op := &ops[i%len(ops)]
			res, _, err := db.ExecRangeInto(op.q, op.pl, dst[:0])
			if err != nil {
				tb.Fatal(err)
			}
			dst = res
			return len(res)
		}
	}
	runNN := func(ops []nnOp) func(i int) int {
		var dst []Result
		return func(i int) int {
			op := &ops[i%len(ops)]
			res, _, err := db.ExecNNInto(op.q, op.pl, dst[:0])
			if err != nil {
				tb.Fatal(err)
			}
			dst = res
			return len(res)
		}
	}

	return []perfKind{
		{name: "range_index", run: runRange(riOps)},
		{name: "range_scan", run: runRange(rsOps)},
		{name: "range_index_mavg", run: runRange(rmOps)},
		{name: "nn_index", run: runNN(niOps)},
		{name: "nn_scan", run: runNN(nsOps)},
	}
}

// perfPoint is one measured (kind, GOMAXPROCS) cell.
type perfPoint struct {
	Kind       string  `json:"kind"`
	Gomaxprocs int     `json:"gomaxprocs"`
	NsOp       float64 `json:"ns_op"`
	BOp        float64 `json:"b_op"`
	AllocsOp   float64 `json:"allocs_op"`
	QPS        float64 `json:"qps"`
	AvgResults float64 `json:"avg_results"`
}

const (
	perfChunks     = 15
	perfChunkMinMs = 4
)

// measureKind times k as the median of perfChunks chunk means, then counts
// allocations with telemetry disabled (see the package comment).
func measureKind(k perfKind, procs int) perfPoint {
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	// Warm up: fault pages in, settle pools and caches.
	results := 0
	for i := 0; i < 64; i++ {
		results += k.run(i)
	}

	// Size a chunk to at least perfChunkMinMs of work.
	start := time.Now()
	probeOps := 32
	for i := 0; i < probeOps; i++ {
		k.run(i)
	}
	perOp := time.Since(start) / time.Duration(probeOps)
	if perOp <= 0 {
		perOp = time.Nanosecond
	}
	chunkOps := int(time.Duration(perfChunkMinMs)*time.Millisecond/perOp) + 1
	if chunkOps < 16 {
		chunkOps = 16
	}
	if chunkOps > 4096 {
		chunkOps = 4096
	}

	// Chunked timing: median across chunks resists scheduler noise.
	nsPerOp := make([]float64, perfChunks)
	n := 0
	resSum := 0
	for c := 0; c < perfChunks; c++ {
		t0 := time.Now()
		for i := 0; i < chunkOps; i++ {
			resSum += k.run(n)
			n++
		}
		nsPerOp[c] = float64(time.Since(t0).Nanoseconds()) / float64(chunkOps)
	}
	sort.Float64s(nsPerOp)
	med := nsPerOp[perfChunks/2]

	// Allocation counts: telemetry off so the measured surface is the
	// engine hot path, not the metrics registry.
	wasEnabled := telemetry.Enabled()
	telemetry.SetEnabled(false)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		k.run(i)
		i++
	})
	var m0, m1 runtime.MemStats
	const bytesOps = 200
	runtime.ReadMemStats(&m0)
	for j := 0; j < bytesOps; j++ {
		k.run(j)
	}
	runtime.ReadMemStats(&m1)
	telemetry.SetEnabled(wasEnabled)
	bOp := float64(m1.TotalAlloc-m0.TotalAlloc) / bytesOps

	return perfPoint{
		Kind:       k.name,
		Gomaxprocs: procs,
		NsOp:       med,
		BOp:        bOp,
		AllocsOp:   allocs,
		QPS:        1e9 / med,
		AvgResults: float64(resSum) / float64(perfChunks*chunkOps),
	}
}

func measureAll(tb testing.TB) []perfPoint {
	db, data := perfStore(tb)
	kinds := perfKinds(tb, db, data)
	var pts []perfPoint
	for _, procs := range []int{1, 4} {
		for _, k := range kinds {
			pts = append(pts, measureKind(k, procs))
		}
	}
	return pts
}

// perfSnapshot is the JSON shape both the baseline file and the
// before/after halves of BENCH_6.json use.
type perfSnapshot struct {
	Bench      string      `json:"bench"`
	Phase      string      `json:"phase"`
	Go         string      `json:"go"`
	Series     int         `json:"series"`
	Length     int         `json:"length"`
	Eps        float64     `json:"eps"`
	K          int         `json:"k"`
	TimingNote string      `json:"timing_note"`
	Points     []perfPoint `json:"points"`
}

func snapshotOf(phase string, pts []perfPoint) perfSnapshot {
	return perfSnapshot{
		Bench:      "perf",
		Phase:      phase,
		Go:         runtime.Version(),
		Series:     perfSeries,
		Length:     perfLen,
		Eps:        perfEps,
		K:          perfK,
		TimingNote: "ns_op is the median of chunk means with telemetry enabled; allocs_op/b_op measured with telemetry disabled",
		Points:     pts,
	}
}

// TestPerfBaseline captures the pre-change per-op costs. Gated by
// TSQ_BENCH_BASELINE naming the output path.
func TestPerfBaseline(t *testing.T) {
	out := os.Getenv("TSQ_BENCH_BASELINE")
	if out == "" {
		t.Skip("set TSQ_BENCH_BASELINE=<path> to capture a perf baseline")
	}
	snap := snapshotOf("baseline", measureAll(t))
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range snap.Points {
		t.Logf("%-18s gomaxprocs=%d  %10.0f ns/op  %8.0f B/op  %6.1f allocs/op  avg_results=%.1f",
			p.Kind, p.Gomaxprocs, p.NsOp, p.BOp, p.AllocsOp, p.AvgResults)
	}
	t.Logf("baseline written to %s", out)
}

// perfComparison is one row of BENCH_6.json: a (kind, GOMAXPROCS) cell
// with its baseline, its current measurement, and the speedup.
type perfComparison struct {
	Kind       string     `json:"kind"`
	Gomaxprocs int        `json:"gomaxprocs"`
	Before     *perfPoint `json:"before,omitempty"`
	After      perfPoint  `json:"after"`
	Speedup    float64    `json:"speedup,omitempty"`
}

// TestPerfReport measures the current tree and merges the stored baseline
// into BENCH_6.json. Gated by TSQ_BENCH_OUT.
func TestPerfReport(t *testing.T) {
	out := os.Getenv("TSQ_BENCH_OUT")
	if out == "" {
		t.Skip("set TSQ_BENCH_OUT=<path> to run the perf report")
	}
	baselinePath := os.Getenv("TSQ_BENCH_BASELINE_IN")
	if baselinePath == "" {
		baselinePath = "../../bench/BENCH6_BASELINE.json"
	}
	var base perfSnapshot
	if buf, err := os.ReadFile(baselinePath); err == nil {
		if err := json.Unmarshal(buf, &base); err != nil {
			t.Fatalf("baseline %s: %v", baselinePath, err)
		}
	} else {
		t.Logf("no baseline at %s; reporting current numbers only", baselinePath)
	}
	baseOf := func(kind string, procs int) *perfPoint {
		for i := range base.Points {
			if base.Points[i].Kind == kind && base.Points[i].Gomaxprocs == procs {
				return &base.Points[i]
			}
		}
		return nil
	}

	after := measureAll(t)
	rows := make([]perfComparison, 0, len(after))
	for _, p := range after {
		row := perfComparison{Kind: p.Kind, Gomaxprocs: p.Gomaxprocs, After: p}
		if b := baseOf(p.Kind, p.Gomaxprocs); b != nil {
			row.Before = b
			row.Speedup = b.NsOp / p.NsOp
		}
		rows = append(rows, row)
		if row.Before != nil {
			t.Logf("%-18s gomaxprocs=%d  %10.0f -> %10.0f ns/op (%.2fx)  allocs %5.1f -> %5.1f",
				p.Kind, p.Gomaxprocs, row.Before.NsOp, p.NsOp, row.Speedup, row.Before.AllocsOp, p.AllocsOp)
		} else {
			t.Logf("%-18s gomaxprocs=%d  %10.0f ns/op  %6.1f allocs/op", p.Kind, p.Gomaxprocs, p.NsOp, p.AllocsOp)
		}
	}

	report := struct {
		Bench       string           `json:"bench"`
		Go          string           `json:"go"`
		Series      int              `json:"series"`
		Length      int              `json:"length"`
		Eps         float64          `json:"eps"`
		K           int              `json:"k"`
		TimingNote  string           `json:"timing_note"`
		Comparisons []perfComparison `json:"comparisons"`
	}{
		Bench:       "perf",
		Go:          runtime.Version(),
		Series:      perfSeries,
		Length:      perfLen,
		Eps:         perfEps,
		K:           perfK,
		TimingNote:  snapshotOf("", nil).TimingNote,
		Comparisons: rows,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("report written to %s", out)
}

// BenchmarkExecHotPath is the standard go-bench surface over the same
// kinds, with allocation reporting for `go test -bench -benchmem`.
func BenchmarkExecHotPath(b *testing.B) {
	db, data := perfStore(b)
	kinds := perfKinds(b, db, data)
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.run(i)
			}
		})
	}
}
