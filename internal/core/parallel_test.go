package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transform"
)

func TestSelfJoinScanParallelMatchesSerial(t *testing.T) {
	ens, err := dataset.StockLike(120, 128, 44, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(128, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ens.Series {
		if _, err := db.Insert(s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	tr := transform.MovingAverage(128, 20)
	serial, sStats, err := db.SelfJoin(ens.Epsilon, tr, JoinScanEarlyAbandon)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7} {
		par, pStats, err := db.SelfJoinScanParallel(ens.Epsilon, tr, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d pairs vs serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].A != serial[i].A || par[i].B != serial[i].B {
				t.Fatalf("workers=%d: pair %d is (%d,%d), serial (%d,%d)",
					workers, i, par[i].A, par[i].B, serial[i].A, serial[i].B)
			}
			if math.Abs(par[i].Dist-serial[i].Dist) > 1e-12 {
				t.Fatalf("workers=%d: distance mismatch at %d", workers, i)
			}
		}
		// Identical total work regardless of partitioning.
		if pStats.DistanceTerms != sStats.DistanceTerms {
			t.Fatalf("workers=%d: %d distance terms vs serial %d",
				workers, pStats.DistanceTerms, sStats.DistanceTerms)
		}
		if pStats.Candidates != sStats.Candidates {
			t.Fatalf("workers=%d: %d candidates vs serial %d",
				workers, pStats.Candidates, sStats.Candidates)
		}
	}
}

func TestSelfJoinScanParallelValidation(t *testing.T) {
	db, _ := newTestDB(t, 10, 45, Options{})
	if _, _, err := db.SelfJoinScanParallel(-1, transform.Identity(testLen), 2); err == nil {
		t.Error("negative eps should fail")
	}
	if _, _, err := db.SelfJoinScanParallel(1, transform.Identity(3), 2); err == nil {
		t.Error("wrong transform length should fail")
	}
}

func TestSelfJoinScanParallelEmpty(t *testing.T) {
	db, err := NewDB(testLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := db.SelfJoinScanParallel(1, transform.Identity(testLen), 4)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty DB parallel join: %v %v", pairs, err)
	}
}
