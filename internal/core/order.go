package core

import "slices"

// Deterministic result orderings. Every query kind re-sorts its output
// with a total order — distance first, ties broken by ID — so that two
// executions over the same logical store produce byte-identical slices
// regardless of scan iteration order, index structure, or how many shards
// the execution fanned out across. This is what lets the sharded engine's
// merge step be a plain sort, and parity tests compare exact slices.
//
// The comparators are package-level functions handed to slices.SortFunc:
// unlike sort.Slice, which allocates a closure and a reflect-based
// swapper per call, this sorts with zero allocations — and since each
// order is total (IDs are unique per answer set), the unstable sort has
// exactly one fixed point and determinism is unaffected.

func cmpResults(a, b Result) int {
	if a.Dist != b.Dist {
		if a.Dist < b.Dist {
			return -1
		}
		return 1
	}
	if a.ID != b.ID {
		if a.ID < b.ID {
			return -1
		}
		return 1
	}
	return 0
}

// sortResults orders range/NN answers by (Dist, ID).
func sortResults(out []Result) { slices.SortFunc(out, cmpResults) }

func cmpPairs(a, b JoinPair) int {
	if a.A != b.A {
		if a.A < b.A {
			return -1
		}
		return 1
	}
	if a.B != b.B {
		if a.B < b.B {
			return -1
		}
		return 1
	}
	return 0
}

// sortPairs orders join answers by (A, B).
func sortPairs(out []JoinPair) { slices.SortFunc(out, cmpPairs) }

func cmpSubseq(a, b SubseqResult) int {
	if a.Dist != b.Dist {
		if a.Dist < b.Dist {
			return -1
		}
		return 1
	}
	if a.ID != b.ID {
		if a.ID < b.ID {
			return -1
		}
		return 1
	}
	return 0
}

// sortSubseq orders subsequence answers by (Dist, ID).
func sortSubseq(out []SubseqResult) { slices.SortFunc(out, cmpSubseq) }

// resultLess is the (Dist, ID) total order on individual results, used by
// the nearest-neighbor bound to decide replacements at the boundary.
func resultLess(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}
