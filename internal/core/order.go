package core

import "sort"

// Deterministic result orderings. Every query kind re-sorts its output
// with a total order — distance first, ties broken by ID — so that two
// executions over the same logical store produce byte-identical slices
// regardless of scan iteration order, index structure, or how many shards
// the execution fanned out across. This is what lets the sharded engine's
// merge step be a plain sort, and parity tests compare exact slices.

// sortResults orders range/NN answers by (Dist, ID).
func sortResults(out []Result) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
}

// sortPairs orders join answers by (A, B).
func sortPairs(out []JoinPair) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
}

// sortSubseq orders subsequence answers by (Dist, ID).
func sortSubseq(out []SubseqResult) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
}

// resultLess is the (Dist, ID) total order on individual results, used by
// the nearest-neighbor bound to decide replacements at the boundary.
func resultLess(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}
