// Package core is the query processor at the heart of the reproduction —
// the paper's primary contribution assembled into a working system. It
// wires the k-index (Section 4), the paged relations, and the
// transformation language into the three query kinds the paper supports —
// range queries, nearest-neighbor queries, and all-pairs (join) queries —
// each available both through the index (Algorithm 2) and through the
// sequential-scan baselines the experiments compare against (Section 5).
//
// A DB holds, for one fixed series length n:
//
//   - the time-domain relation: raw series, used by warp verification and
//     examples;
//   - the frequency-domain relation: the full n-coefficient spectrum of
//     every series' normal form, stored in energy order so scans and
//     post-processing can abandon distance computations early;
//   - the k-index: an R*-tree over the Section 5 feature layout
//     (mean, std, polar/rect coefficients X_1..X_K of the normal form).
//
// All query distances are Euclidean distances between *normal forms*
// (optionally transformed), matching the paper's experimental setup where
// every series is normalized before indexing and mean/std live in separate
// index dimensions.
package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/dft"
	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/rtree"
	"repro/internal/series"
	"repro/internal/transform"
)

// Options configures a DB.
type Options struct {
	// Schema is the feature layout; the zero value selects the paper's
	// six-dimensional polar schema.
	Schema feature.Schema
	// PageSize for the simulated relations (<= 0: 4 KiB).
	PageSize int
	// RTree carries node capacity options for the index.
	RTree rtree.Options
	// DisablePartialPrune turns off the k-coefficient distance pruning of
	// index candidates (ablation; Lemma 1 soundness is unaffected either
	// way, only the number of verified candidates changes).
	DisablePartialPrune bool
	// BufferPoolPages, when positive, routes relation reads through LRU
	// buffer pools of this many pages each (time- and frequency-domain
	// relations get one pool apiece). ExecStats.PageReads then counts
	// physical reads — pool misses — as a 1997 buffer manager would.
	// Ignored when Backing is set: a disk-backed store's mandatory pool is
	// sized by CachePages instead.
	BufferPoolPages int
	// Backing, when non-empty, stores the relations in disk-backed page
	// files under this directory instead of in memory: pages fault in
	// through a buffer pool on demand, so the store can exceed RAM. The
	// directory is created if needed; the page files are process scratch
	// (snapshots remain the durability format) and are removed by Close.
	// A Sharded store gives each shard its own subdirectory.
	Backing string
	// CachePages is the per-relation buffer-pool capacity (in pages) when
	// Backing is set; <= 0 selects relation.DefaultDiskCachePages. The
	// time- and frequency-domain relations get one pool apiece.
	CachePages int
	// SpectrumRefreshEvery bounds how many appended points a series'
	// stored spectrum record may lag its window before Append rewrites it
	// with the exact FFT. 1 refreshes on every append — cheapest reads,
	// costliest ingest; larger values amortize the O(n log n) FFT over
	// more O(K) appends at the price of on-demand spectrum derivation for
	// reads of stale series. <= 0 (the default) selects the adaptive
	// cadence: the store watches its own query/append mix and slides the
	// bound between 4 (read-heavy) and 256 (append-heavy), starting from
	// 32. Answers are byte-identical at any cadence.
	SpectrumRefreshEvery int
}

// DB is an indexed collection of equal-length time series.
type DB struct {
	schema  feature.Schema
	length  int
	opts    Options
	idx     *index.KIndex
	timeRel *relation.Relation
	freqRel *relation.Relation
	points  map[int64]geom.Point
	names   map[int64]string
	byName  map[string]int64
	ids     []int64       // live IDs, arbitrary order (swap-delete); see IDs()
	idPos   map[int64]int // id -> position in ids, for O(1) Delete
	nextID  int64
	perm    []int // energy-order permutation for length-n spectra
	// identA/identB are the permuted identity-transform coefficient
	// vectors (all ones / all zeros — invariant under any permutation),
	// shared read-only by every identity-transform plan so the hot
	// planning path skips two O(n) allocations per query.
	identA, identB []complex128
	// streams holds the incremental sliding-window state of series that
	// have been appended to (see Append); materialized lazily on the first
	// append and dropped when the series is deleted or replaced.
	streams map[int64]*streamState
	// refreshEvery is the resolved spectrum-refresh cadence (see
	// Options.SpectrumRefreshEvery).
	refreshEvery int
	// gen numbers the relation generations of a disk-backed store: Compact
	// builds generation gen+1's page files alongside the live pair before
	// swapping, so scratch file names never collide.
	gen int
	// tracker feeds measured selectivity back to the query planner;
	// history keeps the recent executed plans for est-vs-actual
	// diagnostics.
	tracker *plan.Tracker
	history *plan.History
	// exploreTick counts unforced scan-routed range executions; every
	// exploreEvery-th one runs a count-only index probe so the range
	// calibration keeps learning while scans win (see maybeExploreRange).
	// joinExploreTick is the same counter for scan-routed joins (see
	// maybeExploreJoin in join.go).
	exploreTick     atomic.Uint64
	joinExploreTick atomic.Uint64
	// queryCount and appendCount drive the adaptive spectrum-refresh
	// cadence (see refreshCadence in append.go): hot-path executions bump
	// queryCount, appends bump appendCount.
	queryCount  atomic.Uint64
	appendCount atomic.Uint64
	// adaptiveRefresh caches the adaptive cadence between recomputations.
	adaptiveRefresh atomic.Int64
}

// NewDB creates an empty DB for series of the given length.
func NewDB(length int, opts Options) (*DB, error) {
	if length < 4 {
		return nil, fmt.Errorf("core: series length %d too short", length)
	}
	if opts.Schema == (feature.Schema{}) {
		opts.Schema = feature.DefaultSchema
	}
	if err := opts.Schema.Validate(); err != nil {
		return nil, err
	}
	if length < opts.Schema.K+1 {
		return nil, fmt.Errorf("core: length %d cannot support K=%d coefficients", length, opts.Schema.K)
	}
	ix, err := index.New(opts.Schema, opts.RTree)
	if err != nil {
		return nil, err
	}
	timeRel, freqRel, err := newRelationPair(opts, 0)
	if err != nil {
		return nil, err
	}
	db := &DB{
		schema:  opts.Schema,
		length:  length,
		opts:    opts,
		idx:     ix,
		timeRel: timeRel,
		freqRel: freqRel,
		points:  make(map[int64]geom.Point),
		names:   make(map[int64]string),
		byName:  make(map[string]int64),
		idPos:   make(map[int64]int),
		perm:    relation.EnergyOrder(length),
		identA:  transform.Identity(length).A,
		identB:  transform.Identity(length).B,
		streams: make(map[int64]*streamState),
		tracker: plan.NewTracker(),
		history: plan.NewHistory(0),
	}
	// Price plans with machine-measured cost constants (one calibration
	// per process; see plan.Calibrate).
	db.tracker.SetCosts(plan.Calibrated())
	// refreshEvery <= 0 keeps the adaptive cadence (refreshCadence);
	// positive values pin it.
	db.refreshEvery = opts.SpectrumRefreshEvery
	db.adaptiveRefresh.Store(spectrumRefreshEvery)
	if opts.BufferPoolPages > 0 && opts.Backing == "" {
		if err := db.timeRel.AttachPool(opts.BufferPoolPages); err != nil {
			return nil, err
		}
		if err := db.freqRel.AttachPool(opts.BufferPoolPages); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// newRelationPair builds a store's time- and frequency-domain relations
// per the options: disk-backed page files under opts.Backing when set
// (gen picks the generation-suffixed scratch names, so a compaction can
// build its replacement pair next to the live one), in-memory otherwise.
func newRelationPair(opts Options, gen int) (timeRel, freqRel *relation.Relation, err error) {
	if opts.Backing == "" {
		return relation.New(opts.PageSize), relation.New(opts.PageSize), nil
	}
	if err := os.MkdirAll(opts.Backing, 0o755); err != nil {
		return nil, nil, fmt.Errorf("core: creating backing directory: %w", err)
	}
	timeRel, err = relation.NewDisk(filepath.Join(opts.Backing, fmt.Sprintf("time-g%03d.pages", gen)), opts.PageSize, opts.CachePages)
	if err != nil {
		return nil, nil, err
	}
	freqRel, err = relation.NewDisk(filepath.Join(opts.Backing, fmt.Sprintf("freq-g%03d.pages", gen)), opts.PageSize, opts.CachePages)
	if err != nil {
		timeRel.Close()
		return nil, nil, err
	}
	return timeRel, freqRel, nil
}

// Close releases the store's backing storage, removing the disk scratch
// files of a disk-backed store (snapshots are the durability format). The
// DB must not be used afterwards. No-op for memory-backed stores.
func (db *DB) Close() error {
	err := db.timeRel.Close()
	if ferr := db.freqRel.Close(); err == nil {
		err = ferr
	}
	return err
}

// PoolStats aggregates buffer-pool counters across a store's relations
// (time- and frequency-domain pools summed; shards summed on a Sharded
// store). Zero-valued with DiskBacked false when no pools are attached.
type PoolStats struct {
	Hits, Misses, Evictions int64
	Resident, Pinned        int
	Capacity                int
	DiskBacked              bool
}

func (p *PoolStats) add(info relation.PoolInfo) {
	p.Hits += info.Hits
	p.Misses += info.Misses
	p.Evictions += info.Evictions
	p.Resident += info.Resident
	p.Pinned += info.Pinned
	p.Capacity += info.Capacity
}

// PoolStats reports the combined buffer-pool state of the DB's relations.
func (db *DB) PoolStats() PoolStats {
	var out PoolStats
	if info, ok := db.timeRel.PoolInfo(); ok {
		out.add(info)
	}
	if info, ok := db.freqRel.PoolInfo(); ok {
		out.add(info)
	}
	out.DiskBacked = db.timeRel.DiskBacked()
	return out
}

// FeatureBounds returns the store's feature-space MBR (the zero rect when
// empty) — the extent JoinPrefilter.Retag re-anchors cached join geometry
// to.
func (db *DB) FeatureBounds() geom.Rect { return db.idx.Tree().Bounds() }

// Len returns the number of stored series.
func (db *DB) Len() int { return len(db.ids) }

// Length returns the fixed series length.
func (db *DB) Length() int { return db.length }

// Schema returns the feature schema.
func (db *DB) Schema() feature.Schema { return db.schema }

// Index exposes the underlying k-index (diagnostics, ablations).
func (db *DB) Index() *index.KIndex { return db.idx }

// IDs returns the live stored IDs in insertion order. IDs are assigned
// monotonically, so ascending ID order is insertion order; the returned
// slice is a fresh copy the caller may keep. (Internally the live-ID list
// is kept in arbitrary order so Delete can swap-delete in O(1).)
func (db *DB) IDs() []int64 {
	out := make([]int64, len(db.ids))
	copy(out, db.ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Name returns the name stored for an ID.
func (db *DB) Name(id int64) string { return db.names[id] }

// Names returns the live series names in insertion order.
func (db *DB) Names() []string {
	ids := db.IDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = db.names[id]
	}
	return out
}

// IDByName resolves a series name.
func (db *DB) IDByName(name string) (int64, bool) {
	id, ok := db.byName[name]
	return id, ok
}

// FeaturePoint returns the indexed feature point of a stored series.
func (db *DB) FeaturePoint(id int64) (geom.Point, bool) {
	p, ok := db.points[id]
	return p, ok
}

// QueryPrep assembles the stored-record planning artifacts of a series:
// a private copy of its indexed feature point plus its energy-ordered
// spectrum. Planning a by-name query from these skips the normal form,
// the feature extraction, and the query FFT that a literal query series
// pays, without changing the plan — the point is the one the record is
// indexed under, and the spectrum is bit-identical to what querySpectrum
// would recompute (see staleSpectrum). ok is false when the id is not a
// live series.
func (db *DB) QueryPrep(id int64) (*QueryPrep, bool) {
	p, ok := db.points[id]
	if !ok {
		return nil, false
	}
	spec, err := db.spectrum(id)
	if err != nil {
		return nil, false
	}
	return &QueryPrep{Point: append([]float64(nil), p...), Spectrum: spec}, true
}

// Insert adds a named series, indexing its features and storing both
// relations. Names must be unique and non-empty; lengths must match the DB.
func (db *DB) Insert(name string, values []float64) (int64, error) {
	id := db.nextID
	if err := db.insertAt(id, name, values); err != nil {
		return 0, err
	}
	return id, nil
}

// validateInsert runs the cheap structural checks of an insert — name
// present and unique, length matching — without touching storage, so a
// caller can reject bad inserts before committing resources (a Sharded
// store uses it to avoid burning a global ID on a doomed insert).
func (db *DB) validateInsert(name string, values []float64) error {
	if name == "" {
		return fmt.Errorf("core: empty series name")
	}
	if _, dup := db.byName[name]; dup {
		return fmt.Errorf("core: duplicate series name %q", name)
	}
	if len(values) != db.length {
		return fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values), db.length)
	}
	return nil
}

// insertAt stores a series under a caller-chosen ID, which must be unused
// and unique across the DB's lifetime. A Sharded store uses it to assign
// globally unique IDs across its shards; DB.Insert uses it with the DB's
// own counter. nextID advances past id so later plain Inserts never
// collide.
func (db *DB) insertAt(id int64, name string, values []float64) error {
	if err := db.validateInsert(name, values); err != nil {
		return err
	}
	p, err := db.schema.Extract(values)
	if err != nil {
		return err
	}
	if err := db.idx.Insert(id, p); err != nil {
		return err
	}
	if err := db.timeRel.Insert(id, values); err != nil {
		return err
	}
	spec := dft.TransformReal(series.NormalForm(values))
	if err := db.freqRel.Insert(id, relation.EncodeComplex(relation.Permute(spec, db.perm))); err != nil {
		return err
	}
	db.points[id] = p
	db.names[id] = name
	db.byName[name] = id
	db.idPos[id] = len(db.ids)
	db.ids = append(db.ids, id)
	if id >= db.nextID {
		db.nextID = id + 1
	}
	return nil
}

// Delete removes a series by name: its feature point leaves the index and
// it disappears from all query and scan results. The relation pages it
// occupied are not reclaimed (the storage substrate is append-only, like
// a heap file awaiting compaction); page-read accounting of later scans is
// unaffected because scans iterate live IDs. Removal from the live-ID list
// is O(1) via the id→position map and swap-delete, so deletes stay cheap
// at scale; scan iteration order is consequently arbitrary, which is
// harmless because every query re-sorts its results deterministically.
// Delete reports whether the name was present.
func (db *DB) Delete(name string) bool {
	id, ok := db.byName[name]
	if !ok {
		return false
	}
	if p, ok := db.points[id]; ok {
		db.idx.Delete(id, p)
	}
	delete(db.points, id)
	delete(db.names, id)
	delete(db.byName, name)
	delete(db.streams, id)
	if pos, ok := db.idPos[id]; ok {
		last := len(db.ids) - 1
		moved := db.ids[last]
		db.ids[pos] = moved
		db.idPos[moved] = pos
		db.ids = db.ids[:last]
		delete(db.idPos, id)
	}
	return true
}

// Series fetches the raw values of a stored series (charges page reads).
func (db *DB) Series(id int64) ([]float64, error) {
	return db.timeRel.Get(id)
}

// staleSpectrum returns the energy-ordered normal-form spectrum of a
// series whose stored record lags its window (streaming appends defer the
// FFT refresh), derived on demand with the exact computation the insert
// path runs — so observed spectra are bit-identical either way. ok is
// false when the stored record is current.
func (db *DB) staleSpectrum(id int64) ([]complex128, bool) {
	st, tracked := db.streams[id]
	if !tracked || !st.specStale {
		return nil, false
	}
	if p := st.derived.Load(); p != nil {
		return *p, true
	}
	spec := relation.Permute(dft.TransformReal(series.NormalForm(st.tr.Window())), db.perm)
	st.derived.Store(&spec)
	return spec, true
}

// spectrum fetches the energy-ordered normal-form spectrum of a stored
// series, decoding straight off the record's page views — one pass and
// one allocation instead of the byte-copy + float-decode + complex-pair
// passes a Get-based decode would take.
func (db *DB) spectrum(id int64) ([]complex128, error) {
	if spec, ok := db.staleSpectrum(id); ok {
		return spec, nil
	}
	pages, err := db.freqRel.ViewPages(id)
	if err != nil {
		return nil, err
	}
	ps := db.freqRel.PageSize()
	out := make([]complex128, db.length)
	for f := range out {
		out[f] = relation.ComplexAt(pages, ps, f)
	}
	db.freqRel.ReleaseView(id)
	return out, nil
}

// specView abstracts a stored spectrum for distance loops: page views
// with lazy per-coefficient decoding in the common case, or an in-memory
// spectrum when the stored record is stale.
type specView struct {
	pages [][]byte
	ps    int
	vec   []complex128
}

// at returns the f-th energy-ordered coefficient.
func (v specView) at(f int) complex128 {
	if v.vec != nil {
		return v.vec[f]
	}
	return relation.ComplexAt(v.pages, v.ps, f)
}

// specViewOf opens a series' spectrum for a distance loop. The caller must
// give the view back with releaseSpecView when done with it — on a
// disk-backed store the page views are pinned buffer-pool frames.
func (db *DB) specViewOf(id int64) (specView, error) {
	if spec, ok := db.staleSpectrum(id); ok {
		return specView{vec: spec}, nil
	}
	pages, err := db.freqRel.ViewPages(id)
	if err != nil {
		return specView{}, err
	}
	return specView{pages: pages, ps: db.freqRel.PageSize()}, nil
}

// releaseSpecView gives back the pins behind a specViewOf view. The guard
// on v.pages matters for correctness, not just cost: a stale-spectrum view
// took no pins, and releasing anyway could drop a pin another goroutine
// holds on the same record's pages, allowing eviction mid-read.
func (db *DB) releaseSpecView(id int64, v specView) {
	if v.pages != nil {
		db.freqRel.ReleaseView(id)
	}
}

// pageReads snapshots the combined relation read counters.
func (db *DB) pageReads() int64 {
	return db.timeRel.Stats().Reads + db.freqRel.Stats().Reads
}

// ExecStats reports the cost of one query execution.
type ExecStats struct {
	// Elapsed wall-clock time.
	Elapsed time.Duration
	// NodeAccesses is the number of index nodes visited (the paper's
	// "disk accesses" for the index side).
	NodeAccesses int
	// PageReads is the number of relation pages read (scan + verification
	// I/O).
	PageReads int64
	// Candidates is the number of items the filter phase passed to
	// verification.
	Candidates int
	// Results is the number of verified answers.
	Results int
	// DistanceTerms counts accumulated squared-difference terms across all
	// distance computations; early abandoning shows up as a small value
	// relative to Candidates * length.
	DistanceTerms int64
	// Shards is the per-shard provenance of a fan-out execution: one entry
	// per shard with its share of the filter cost and its contribution to
	// the merged answer. Nil on single-store executions (and on the global
	// nested scan join, whose workers stride across shards).
	Shards []ShardExec
	// Strategy is the resolved execution strategy of a planned run
	// ("index", "scan", "scantime"); empty when the caller pinned a
	// method outside the planner.
	Strategy string
	// Delta echoes the approximate tier's guaranteed relative error
	// bound; 0 on exact executions. Rung is the planner's estimated
	// accepting ladder rung in energy-ordered coefficients (0 when the
	// execution verified exactly, e.g. warped approximate queries).
	Delta float64
	Rung  int
	// EarlyAccepts counts candidates the approximate tier resolved at a
	// ladder checkpoint without a full-spectrum walk; BoundTightSum
	// accumulates their bound tightness LB/UB in (0, 1] (divide by
	// EarlyAccepts for the mean; 1 = the bound closed exactly).
	EarlyAccepts  int
	BoundTightSum float64
	// Spans is the execution's trace tree — named wall-time spans for the
	// plan → fan-out → merge pipeline, with per-shard children. Populated
	// by planned executions; TRACE statements and the server's slow-query
	// log surface it.
	Spans []Span
}

// Result is one similarity-query answer.
type Result struct {
	ID   int64
	Name string
	// Dist is the Euclidean distance between the (transformed) normal form
	// of the stored series and the normal form of the query. On
	// approximate executions an early-accepted range answer reports its
	// lower bound here and an early-accepted NN answer its upper bound
	// (the value the k-best ordering and the (1+delta) guarantee hold
	// for).
	Dist float64
	// Bound is the approximate tier's upper bound on the true distance:
	// the true distance lies in [Dist, Bound] for range answers and at
	// most Bound for NN answers (where Dist == Bound at early accepts).
	// 0 on exact executions; equal to Dist when an approximate execution
	// verified the candidate in full.
	Bound float64
}

// permuteTransform returns t's coefficient vectors in the DB's energy
// order, for verification against stored spectra.
func (db *DB) permuteTransform(t transform.T) (a, b []complex128) {
	// The identity's coefficient vectors are constant, hence fixed points
	// of the permutation: serve the shared pre-permuted pair instead of
	// allocating fresh copies on every plan.
	if t.Name == "identity" && len(t.A) == db.length {
		return db.identA, db.identB
	}
	return relation.Permute(t.A, db.perm), relation.Permute(t.B, db.perm)
}

// querySpectrum returns the energy-ordered spectrum of the normal form of
// q (which must have the DB's length).
func (db *DB) querySpectrum(q []float64) []complex128 {
	return relation.Permute(dft.TransformReal(series.NormalForm(q)), db.perm)
}

// viewTransformedWithin computes whether D(A*X+B, Q) <= eps over full
// (energy-ordered) spectra with early abandoning, evaluated lazily
// straight off the stored record's page views: coefficients deserialize
// one at a time, so an early-abandoned comparison skips the decoding of
// everything after the abandonment point. This is what makes the paper's
// scan method (b) an order of magnitude faster than (a) — the dominant
// per-record cost is proportional to the terms actually examined. It
// returns the decision, the exact distance when within, and the number of
// accumulated terms.
func (db *DB) viewTransformedWithin(id int64, a, b, q []complex128, eps float64) (bool, float64, int, error) {
	var buf [][]byte
	return db.viewTransformedWithinBuf(id, a, b, q, eps, &buf)
}

// viewTransformedWithinBuf is viewTransformedWithin with a caller-owned
// page-view buffer (typically an arena's), so the hot verification loop
// opens stored records without allocating.
func (db *DB) viewTransformedWithinBuf(id int64, a, b, q []complex128, eps float64, pbuf *[][]byte) (bool, float64, int, error) {
	var view specView
	if spec, ok := db.staleSpectrum(id); ok {
		view = specView{vec: spec}
	} else {
		pages, err := db.freqRel.ViewPagesInto(id, (*pbuf)[:0])
		if err != nil {
			return false, 0, 0, err
		}
		*pbuf = pages
		// Release only when a view was actually taken: the stale branch
		// holds no pins, and an unconditional release could drop another
		// goroutine's pin on the same record.
		defer db.freqRel.ReleaseView(id)
		view = specView{pages: pages, ps: db.freqRel.PageSize()}
	}
	limit := eps * eps
	var sum float64
	for f := range q {
		x := view.at(f)
		d := a[f]*x + b[f] - q[f]
		sum += real(d)*real(d) + imag(d)*imag(d)
		if sum > limit {
			return false, 0, f + 1, nil
		}
	}
	return true, math.Sqrt(sum), len(q), nil
}
