package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/plan"
	"repro/internal/transform"
)

func TestInsertBulkMatchesIncremental(t *testing.T) {
	walks := dataset.RandomWalks(300, 64, 5)
	names := make([]string, len(walks))
	values := make([][]float64, len(walks))
	for i, w := range walks {
		names[i] = w.Name
		values[i] = w.Values
	}

	inc, err := NewDB(64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if _, err := inc.Insert(names[i], values[i]); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := NewDB(64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.InsertBulk(names, values); err != nil {
		t.Fatal(err)
	}
	if err := bulk.Index().Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("lengths differ: %d vs %d", bulk.Len(), inc.Len())
	}

	// Identical query answers on several query kinds.
	mavg := transform.MovingAverage(64, 10)
	for _, qn := range []string{"W0000", "W0123", "W0299"} {
		id, _ := inc.IDByName(qn)
		vals, _ := inc.Series(id)
		rq := RangeQuery{Values: vals, Eps: 4, Transform: mavg, BothSides: true}
		a, _, err := inc.RangeIndexed(rq)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := bulk.RangeIndexed(rq)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %s: %d vs %d results", qn, len(a), len(b))
		}
		for i := range a {
			if a[i].Name != b[i].Name || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
				t.Fatalf("query %s result %d differs", qn, i)
			}
		}
	}
}

func TestInsertBulkValidation(t *testing.T) {
	db, _ := NewDB(64, Options{})
	good := make([]float64, 64)
	if err := db.InsertBulk([]string{"a", "b"}, [][]float64{good}); err == nil {
		t.Error("count mismatch should fail")
	}
	if err := db.InsertBulk([]string{""}, [][]float64{good}); err == nil {
		t.Error("empty name should fail")
	}
	if err := db.InsertBulk([]string{"a", "a"}, [][]float64{good, good}); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := db.InsertBulk([]string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("wrong length should fail")
	}
	if _, err := db.Insert("x", good); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBulk([]string{"a"}, [][]float64{good}); err == nil {
		t.Error("bulk insert into non-empty DB should fail")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, sc := range []feature.Schema{
		{Space: feature.Polar, K: 2, Moments: true},
		{Space: feature.Rect, K: 3, Moments: false},
	} {
		src, err := NewDB(64, Options{Schema: sc})
		if err != nil {
			t.Fatal(err)
		}
		walks := dataset.RandomWalks(120, 64, 9)
		for _, w := range walks {
			if _, err := src.Insert(w.Name, w.Values); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		n, err := src.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		got, err := ReadFrom(&buf, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != src.Len() || got.Length() != src.Length() {
			t.Fatalf("restored %d series of length %d", got.Len(), got.Length())
		}
		if got.Schema() != sc {
			t.Fatalf("restored schema %+v, want %+v", got.Schema(), sc)
		}
		// Raw series identical.
		for _, id := range src.IDs() {
			name := src.Name(id)
			gid, ok := got.IDByName(name)
			if !ok {
				t.Fatalf("series %q missing after round trip", name)
			}
			a, _ := src.Series(id)
			b, _ := got.Series(gid)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("series %q values differ at %d", name, i)
				}
			}
		}
		// Queries identical.
		vals, _ := src.Series(src.IDs()[7])
		rq := RangeQuery{Values: vals, Eps: 3, Transform: transform.Identity(64)}
		a, _, err := src.RangeIndexed(rq)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := got.RangeIndexed(rq)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("restored DB answers %d, original %d", len(b), len(a))
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadFrom(strings.NewReader("not a snapshot at all"), Options{}); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated: valid header, then EOF.
	var buf bytes.Buffer
	src, _ := NewDB(64, Options{})
	w := dataset.RandomWalks(3, 64, 1)
	for _, s := range w {
		src.Insert(s.Name, s.Values)
	}
	src.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(trunc), Options{}); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

func TestSnapshotHistoryRoundTrip(t *testing.T) {
	run := func(t *testing.T, eng Engine, read func(*bytes.Buffer) (Engine, error)) {
		walks := dataset.RandomWalks(80, 64, 11)
		for _, w := range walks {
			if _, err := eng.Insert(w.Name, w.Values); err != nil {
				t.Fatal(err)
			}
		}
		mavg := transform.MovingAverage(64, 8)
		for i := 0; i < 5; i++ {
			vals, _ := eng.Series(eng.IDs()[i])
			pl, err := eng.PlanRange(RangeQuery{Values: vals, Eps: 2 + float64(i), Transform: mavg, BothSides: true}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := eng.ExecRange(RangeQuery{Values: vals, Eps: 2 + float64(i), Transform: mavg, BothSides: true}, pl); err != nil {
				t.Fatal(err)
			}
		}
		want := eng.PlanHistory()
		if len(want) != 5 {
			t.Fatalf("source history has %d records, want 5", len(want))
		}
		var buf bytes.Buffer
		if _, err := eng.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		have := got.PlanHistory()
		if len(have) != len(want) {
			t.Fatalf("restored history has %d records, want %d", len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, have[i], want[i])
			}
		}
		// The restored ring keeps counting from the persisted sequence.
		vals, _ := got.Series(got.IDs()[0])
		pl, err := got.PlanRange(RangeQuery{Values: vals, Eps: 2, Transform: mavg, BothSides: true}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := got.ExecRange(RangeQuery{Values: vals, Eps: 2, Transform: mavg, BothSides: true}, pl); err != nil {
			t.Fatal(err)
		}
		recs := got.PlanHistory()
		if last := recs[len(recs)-1].Seq; last != want[len(want)-1].Seq+1 {
			t.Fatalf("sequence after restore = %d, want %d", last, want[len(want)-1].Seq+1)
		}
	}
	t.Run("db", func(t *testing.T) {
		db, err := NewDB(64, Options{})
		if err != nil {
			t.Fatal(err)
		}
		run(t, db, func(buf *bytes.Buffer) (Engine, error) {
			return ReadEngine(buf, Options{}, 0)
		})
	})
	t.Run("sharded", func(t *testing.T) {
		s, err := NewSharded(64, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		run(t, s, func(buf *bytes.Buffer) (Engine, error) {
			return ReadEngine(buf, Options{}, 3)
		})
	})
}

// TestSnapshotCostsRoundTrip: the CCAL trailer carries the cost-model
// constants across a snapshot round-trip, so a restored store keeps the
// break-even points it priced plans with when written.
func TestSnapshotCostsRoundTrip(t *testing.T) {
	run := func(t *testing.T, eng Engine, tracker *plan.Tracker, read func(*bytes.Buffer) (Engine, error), restored func(Engine) *plan.Tracker) {
		walks := dataset.RandomWalks(20, 32, 13)
		for _, w := range walks {
			if _, err := eng.Insert(w.Name, w.Values); err != nil {
				t.Fatal(err)
			}
		}
		want := plan.DefaultCosts()
		want.ScanUnit = 0.31
		want.NodeUnit = 1.25
		want.JoinScanUnit = 0.11
		tracker.SetCosts(want)

		var buf bytes.Buffer
		if _, err := eng.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if have := restored(got).Costs(); have != want {
			t.Fatalf("restored costs = %+v, want %+v", have, want)
		}
	}
	t.Run("db", func(t *testing.T) {
		db, err := NewDB(32, Options{})
		if err != nil {
			t.Fatal(err)
		}
		run(t, db, db.tracker, func(buf *bytes.Buffer) (Engine, error) {
			return ReadEngine(buf, Options{}, 0)
		}, func(e Engine) *plan.Tracker { return e.(*DB).tracker })
	})
	t.Run("sharded", func(t *testing.T) {
		s, err := NewSharded(32, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		run(t, s, s.tracker, func(buf *bytes.Buffer) (Engine, error) {
			return ReadEngine(buf, Options{}, 3)
		}, func(e Engine) *plan.Tracker { return e.(*Sharded).tracker })
	})
}

// TestSnapshotPreCostsTrailer: a snapshot ending after the history
// trailer (pre-CCAL format) still loads; the store then calibrates
// fresh.
func TestSnapshotPreCostsTrailer(t *testing.T) {
	db, err := NewDB(32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range dataset.RandomWalks(10, 32, 17) {
		if _, err := db.Insert(w.Name, w.Values); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Strip the CCAL trailer: 4 magic bytes + 5 float64s.
	trimmed := buf.Bytes()[:buf.Len()-(4+5*8)]
	got, err := ReadEngine(bytes.NewBuffer(trimmed), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("restored %d series, want %d", got.Len(), db.Len())
	}
	if got.(*DB).tracker.Costs() != plan.Calibrated() {
		t.Fatalf("pre-CCAL snapshot should leave the fresh calibration in place")
	}
}
