package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/dft"
	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/relation"
	"repro/internal/series"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/transform"
)

// spectrumRefreshEvery is the default bound on how many appended points a
// series' stored spectrum record may lag behind its window before Append
// rewrites it with the exact FFT (Options.SpectrumRefreshEvery overrides
// it). Between refreshes the record is marked stale and every read of the
// series' spectrum derives it on demand from the window (the same
// canonical computation, so answers never change) — the ingest path thus
// amortizes the O(n log n) FFT over many O(K) appends.
const spectrumRefreshEvery = 32

// Bounds and recomputation period of the adaptive refresh cadence (the
// default when Options.SpectrumRefreshEvery is not pinned). The cadence
// slides between eager (4, read-heavy stores: reads then always hit fresh
// records and skip on-demand derivation) and lazy (256, append-heavy
// stores: the O(n log n) FFT amortizes over many O(K) appends), retuned
// from the store's cumulative query/append counters every
// adaptiveRefreshPeriod appended points. Answers are byte-identical at
// any cadence — only where the FFT cost lands changes.
const (
	adaptiveRefreshMin    = 4
	adaptiveRefreshMax    = 256
	adaptiveRefreshPeriod = 256
)

// refreshCadence returns the store's current spectrum-refresh bound: the
// pinned Options.SpectrumRefreshEvery when positive, otherwise the
// adaptive cadence.
func (db *DB) refreshCadence() int {
	if db.refreshEvery > 0 {
		return db.refreshEvery
	}
	return int(db.adaptiveRefresh.Load())
}

// retuneRefreshCadence recomputes the adaptive cadence from the observed
// workload mix: the append share of all hot-path operations interpolates
// the cadence between the eager and lazy bounds.
func (db *DB) retuneRefreshCadence() {
	a := float64(db.appendCount.Load())
	q := float64(db.queryCount.Load())
	if a+q <= 0 {
		return
	}
	every := adaptiveRefreshMin + int(a/(a+q)*float64(adaptiveRefreshMax-adaptiveRefreshMin))
	if every < adaptiveRefreshMin {
		every = adaptiveRefreshMin
	}
	if every > adaptiveRefreshMax {
		every = adaptiveRefreshMax
	}
	db.adaptiveRefresh.Store(int64(every))
}

// streamState is the per-series streaming bookkeeping: the incremental
// window tracker plus the staleness of the stored spectrum record.
type streamState struct {
	tr *stream.Tracker
	// specStale marks the freqRel record as lagging the window.
	specStale bool
	// sinceRefresh counts appended points since the record was rewritten.
	sinceRefresh int
	// derived memoizes the on-demand spectrum of the current window while
	// the record is stale, so repeated reads between appends pay the FFT
	// once. Atomic because readers under shared locks memoize
	// concurrently; racing derivations store identical bits, so whichever
	// pointer wins is equivalent. Cleared by every append.
	derived atomic.Pointer[[]complex128]
}

// AppendInfo reports what one Append committed.
type AppendInfo struct {
	// ID is the series' stable internal ID: unlike Update, Append never
	// reassigns it.
	ID int64
	// Point is the committed feature point after the append (a copy the
	// caller may keep; the server layer feeds it to monitor prefilters and
	// cache invalidation).
	Point geom.Point
	// InPlace reports that the index entry was rewritten in place rather
	// than deleted and reinserted — the cheap path, taken whenever the
	// feature point moved little.
	InPlace bool
}

// Append slides a stored series' window forward by the given points: the
// oldest len(points) values fall off the front, the new points arrive at
// the back, and the series keeps its length, name, and ID. This is the
// streaming-ingest fast path the whole-series Insert/Update pair cannot
// provide:
//
//   - the feature point (mean, std, X_1..X_K of the normal form) is
//     maintained incrementally by a sliding-DFT recurrence in O(K) per
//     point (stream.Tracker), not re-extracted with O(n*K) trigonometry;
//   - the R*-tree entry moves in place when the feature drifted little
//     (rtree.Tree.Update), instead of a delete + reinsert;
//   - the raw window is overwritten in place (relation.Replace), so
//     storage does not grow and no pages are orphaned;
//   - the full-spectrum record is refreshed with the exact FFT only every
//     spectrumRefreshEvery appended points; in between it is marked stale
//     and reads derive the exact spectrum on demand (specViewOf).
//
// Every spectrum a query ever observes — whether decoded from a fresh
// record or derived on demand from a stale one — is the same canonical
// computation the insert path runs on the same window bits, so a series
// built by appends answers every query byte-identically to the same
// window inserted whole.
//
// Appending more points than the window holds is allowed; only the last
// n survive, but every point still passes through the tracker so the
// recurrence state stays exact. Like all DB writes, Append requires
// external synchronization on an unsharded store.
func (db *DB) Append(name string, points []float64) (AppendInfo, error) {
	id, ok := db.byName[name]
	if !ok {
		return AppendInfo{}, fmt.Errorf("core: unknown series %q", name)
	}
	if len(points) == 0 {
		return AppendInfo{}, fmt.Errorf("core: append to %q carries no points", name)
	}
	for i, x := range points {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return AppendInfo{}, fmt.Errorf("core: append to %q has non-finite value at position %d", name, i)
		}
	}
	st, err := db.streamStateFor(id)
	if err != nil {
		return AppendInfo{}, err
	}
	for _, x := range points {
		st.tr.Append(x)
	}
	window := st.tr.Window()

	// Commit the raw window in place (same-length records never change
	// size), then the spectrum record — eagerly on the refresh cadence,
	// otherwise just mark it stale.
	if err := db.timeRel.Replace(id, window); err != nil {
		return AppendInfo{}, err
	}
	st.specStale = true
	st.derived.Store(nil)
	st.sinceRefresh += len(points)
	total := db.appendCount.Add(uint64(len(points)))
	if db.refreshEvery <= 0 && total%adaptiveRefreshPeriod < uint64(len(points)) {
		db.retuneRefreshCadence()
	}
	if st.sinceRefresh >= db.refreshCadence() {
		if err := db.refreshSpectrum(id, st, window); err != nil {
			return AppendInfo{}, err
		}
	}

	// Commit the index: incremental feature point, in-place entry move
	// when it stayed inside its leaf region.
	mean, std := st.tr.Moments()
	newPoint := db.schema.Point(mean, std, st.tr.Coeffs())
	old := db.points[id]
	inPlace, found := db.idx.Update(id, old, newPoint)
	if !found {
		return AppendInfo{}, fmt.Errorf("core: index entry for %q (id %d) missing", name, id)
	}
	db.points[id] = newPoint
	return AppendInfo{ID: id, Point: newPoint.Clone(), InPlace: inPlace}, nil
}

// refreshSpectrum rewrites the stored spectrum record from the window —
// the exact computation the insert path runs — and clears staleness. The
// caller must hold the DB's write access.
func (db *DB) refreshSpectrum(id int64, st *streamState, window []float64) error {
	spec := dft.TransformReal(series.NormalForm(window))
	if err := db.freqRel.Replace(id, relation.EncodeComplex(relation.Permute(spec, db.perm))); err != nil {
		return err
	}
	st.specStale = false
	st.sinceRefresh = 0
	st.derived.Store(nil)
	if telemetry.Enabled() {
		telemetry.Count("tsq_spectrum_refreshes_total").Inc()
	}
	return nil
}

// flushSpectra rewrites every stale spectrum record, so operations that
// read records wholesale (Compact) see fresh pages. The caller must hold
// the DB's write access.
func (db *DB) flushSpectra() error {
	for id, st := range db.streams {
		if !st.specStale {
			continue
		}
		if err := db.refreshSpectrum(id, st, st.tr.Window()); err != nil {
			return err
		}
	}
	return nil
}

// streamStateFor returns the series' streaming state, materializing the
// tracker from the stored values on the first append (so series loaded
// from snapshots or bulk loads are appendable with no special setup).
func (db *DB) streamStateFor(id int64) (*streamState, error) {
	if st, ok := db.streams[id]; ok {
		return st, nil
	}
	values, err := db.timeRel.Get(id)
	if err != nil {
		return nil, err
	}
	tr, err := stream.NewTracker(values, db.schema.K)
	if err != nil {
		return nil, err
	}
	st := &streamState{tr: tr}
	db.streams[id] = st
	return st, nil
}

// CheckWithin verifies a single stored series against a range query
// exactly — the same planning, moment filtering, and full-spectrum
// early-abandoning distance the indexed range query applies to its
// candidates, addressed to one name. The standing-query monitors use it to
// re-verify a series after an append without running the whole query. A
// name not currently stored is simply not within (dist 0, within false):
// monitor semantics treat deletion as leaving the answer set.
func (db *DB) CheckWithin(name string, q RangeQuery) (dist float64, within bool, err error) {
	p, err := db.planRange(q)
	if err != nil {
		return 0, false, err
	}
	id, ok := db.byName[name]
	if !ok {
		return 0, false, nil
	}
	if q.Moments != (feature.MomentBounds{}) {
		// Index answers respect the moment bounds via the search rectangle;
		// replicate that here so membership semantics agree.
		mean, std := db.schema.MomentsOf(db.points[id])
		mb := q.Moments
		if mean < mb.MeanLo || mean > mb.MeanHi || std < mb.StdLo || std > mb.StdHi {
			return 0, false, nil
		}
	}
	var st ExecStats
	verify := db.verifierFor(p, &st)
	within, dist, err = verify(id, q.Eps)
	if err != nil {
		return 0, false, err
	}
	return dist, within, nil
}

// Prefilter is the query-side geometry of a standing range/NN monitor: the
// query's feature point, the transformation's affine index action, and the
// moment bounds — everything needed to run the Lemma 1 rectangle test
// against a single stored feature point. Building one costs a feature
// extraction; each Hit costs O(dims).
type Prefilter struct {
	schema  feature.Schema
	m       transform.AffineMap
	qp      geom.Point
	moments feature.MomentBounds
	angular []bool
}

// PlanPrefilter builds the prefilter for a range-shaped query spec (Eps is
// ignored — the threshold is supplied per Hit, which is what lets NN
// monitors reuse one prefilter as their k-th-best distance tightens).
func (db *DB) PlanPrefilter(q RangeQuery) (*Prefilter, error) {
	if err := db.validateRange(q); err != nil {
		return nil, err
	}
	qp, err := db.queryFeaturePoint(q)
	if err != nil {
		return nil, err
	}
	m, err := db.schema.Map(q.Transform)
	if err != nil {
		return nil, err
	}
	if q.BothSides && !m.Identity() {
		qp = m.ApplyPoint(qp)
	}
	return &Prefilter{
		schema:  db.schema,
		m:       m,
		qp:      qp,
		moments: q.Moments,
		angular: db.schema.Angular(),
	}, nil
}

// Hit reports whether a series whose feature point is p could belong to
// the query's answer set at threshold eps: the transformed point is tested
// against the Section 3.1 search rectangle, with the polar space's
// modulo-2*pi angle semantics. By Lemma 1 a full-spectrum distance within
// eps implies the feature point lies in the rectangle, so a miss soundly
// proves non-membership — no false dismissals, exactly like the index
// filter step.
func (p *Prefilter) Hit(pt geom.Point, eps float64) bool {
	if math.IsInf(eps, 1) {
		return true
	}
	tp := pt
	if !p.m.Identity() {
		tp = p.m.ApplyPoint(pt)
	}
	rect := p.schema.SearchRect(p.qp, eps, p.moments)
	return geom.ContainsPointMixed(rect, tp, p.angular)
}

// IndexableRect returns the prefilter's search rectangle at threshold eps
// when — and only when — Hit reduces to rectangle containment of the raw
// feature point: the transformation's affine index action must be the
// identity, so the rectangle is fixed for the query's lifetime. The
// standing-query hub indexes such rectangles in a shared R-tree (one
// spatial probe per write instead of one containment test per monitor);
// prefilters with a non-identity action transform the point before the
// containment test, so their geometry cannot live in a shared tree and ok
// is false.
func (p *Prefilter) IndexableRect(eps float64) (rect geom.Rect, angular []bool, ok bool) {
	if p == nil || !p.m.Identity() || math.IsInf(eps, 1) || eps < 0 {
		return geom.Rect{}, nil, false
	}
	return p.schema.SearchRect(p.qp, eps, p.moments), p.angular, true
}

// Append slides a series' window forward in its owning shard, taking only
// that shard's exclusive lock. The global ID is stable across appends, so
// the catalog needs no update — an appender to one shard never touches
// another shard's locks or the catalog mutex. See DB.Append for the
// committed state.
func (s *Sharded) Append(name string, points []float64) (AppendInfo, error) {
	si := s.shardFor(name)
	s.locks[si].Lock()
	defer s.locks[si].Unlock()
	return s.shards[si].Append(name, points)
}

// CheckWithin verifies one stored series against a range query under its
// shard's shared lock. See DB.CheckWithin.
func (s *Sharded) CheckWithin(name string, q RangeQuery) (float64, bool, error) {
	si := s.shardFor(name)
	s.locks[si].RLock()
	defer s.locks[si].RUnlock()
	return s.shards[si].CheckWithin(name, q)
}

// PlanPrefilter builds a monitor prefilter; planning depends only on the
// schema and length shared by every shard, so no locks are taken.
func (s *Sharded) PlanPrefilter(q RangeQuery) (*Prefilter, error) {
	return s.shards[0].PlanPrefilter(q)
}

// FeaturePoint returns the indexed feature point stored under a global ID.
func (s *Sharded) FeaturePoint(id int64) (geom.Point, bool) {
	s.mu.RLock()
	si, ok := s.owner[id]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	s.locks[si].RLock()
	defer s.locks[si].RUnlock()
	return s.shards[si].FeaturePoint(id)
}

// QueryPrep assembles the stored-record planning artifacts of a global
// ID from its owning shard; see DB.QueryPrep.
func (s *Sharded) QueryPrep(id int64) (*QueryPrep, bool) {
	s.mu.RLock()
	si, ok := s.owner[id]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	s.locks[si].RLock()
	defer s.locks[si].RUnlock()
	return s.shards[si].QueryPrep(id)
}
