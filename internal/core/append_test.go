package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transform"
)

// appendWalks builds count walks of total length; the first windowLen
// values seed the stores, the rest arrive as appends.
func appendWalks(count, total int, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		out[i] = dataset.RandomWalk(r, total)
	}
	return out
}

// buildByAppends seeds eng with each walk's initial window and streams the
// remainder in uneven chunks.
func buildByAppends(t *testing.T, eng Engine, walks [][]float64, windowLen int) {
	t.Helper()
	for i, w := range walks {
		if _, err := eng.Insert(fmt.Sprintf("W%04d", i), w[:windowLen]); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range walks {
		rest := w[windowLen:]
		chunk := 1 + i%5
		for off := 0; off < len(rest); off += chunk {
			end := off + chunk
			if end > len(rest) {
				end = len(rest)
			}
			if _, err := eng.Append(fmt.Sprintf("W%04d", i), rest[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// buildWhole inserts each walk's final window directly, in the same name
// and ID order as buildByAppends.
func buildWhole(t *testing.T, eng Engine, walks [][]float64, windowLen int) {
	t.Helper()
	for i, w := range walks {
		if _, err := eng.Insert(fmt.Sprintf("W%04d", i), w[len(w)-windowLen:]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendParity is the core-level half of the acceptance criterion: a
// store built by appends answers range, NN, and subsequence queries
// byte-identically to a store holding the same final windows inserted
// whole, at shard counts 1 and 4.
func TestAppendParity(t *testing.T) {
	const (
		windowLen = 64
		total     = windowLen + 150 // several wrap-arounds of streamed points
		count     = 60
	)
	walks := appendWalks(count, total, 1997)

	build := func(mk func() Engine, streamed bool) Engine {
		eng := mk()
		if streamed {
			buildByAppends(t, eng, walks, windowLen)
		} else {
			buildWhole(t, eng, walks, windowLen)
		}
		return eng
	}
	mkDB := func() Engine {
		db, err := NewDB(windowLen, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	mkSharded := func() Engine {
		s, err := NewSharded(windowLen, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	for _, tc := range []struct {
		label string
		mk    func() Engine
	}{{"shards=1", mkDB}, {"shards=4", mkSharded}} {
		streamed := build(tc.mk, true)
		whole := build(tc.mk, false)

		// Stored values must be bitwise identical.
		for i := 0; i < count; i++ {
			id, ok := streamed.IDByName(fmt.Sprintf("W%04d", i))
			if !ok {
				t.Fatalf("%s: W%04d missing from streamed store", tc.label, i)
			}
			got, err := streamed.Series(id)
			if err != nil {
				t.Fatal(err)
			}
			want := walks[i][len(walks[i])-windowLen:]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: W%04d stored window differs after appends", tc.label, i)
			}
		}

		q := walks[3][len(walks[3])-windowLen:]
		mavg := transform.MovingAverage(windowLen, 8)
		for _, query := range []struct {
			label string
			run   func(Engine) (any, error)
		}{
			{"range-identity", func(e Engine) (any, error) {
				r, _, err := e.RangeIndexed(RangeQuery{Values: q, Eps: 4, Transform: transform.Identity(windowLen)})
				return r, err
			}},
			{"range-mavg-both", func(e Engine) (any, error) {
				r, _, err := e.RangeIndexed(RangeQuery{Values: q, Eps: 3, Transform: mavg, BothSides: true})
				return r, err
			}},
			{"range-scan", func(e Engine) (any, error) {
				r, _, err := e.RangeScanFreq(RangeQuery{Values: q, Eps: 4, Transform: transform.Identity(windowLen)})
				return r, err
			}},
			{"nn", func(e Engine) (any, error) {
				r, _, err := e.NNIndexed(NNQuery{Values: q, K: 7, Transform: transform.Identity(windowLen)})
				return r, err
			}},
			{"nn-mavg", func(e Engine) (any, error) {
				r, _, err := e.NNIndexed(NNQuery{Values: q, K: 5, Transform: mavg})
				return r, err
			}},
			{"subseq", func(e Engine) (any, error) {
				r, _, err := e.SubsequenceScan(q[:16], 10)
				return r, err
			}},
		} {
			got, err := query.run(streamed)
			if err != nil {
				t.Fatalf("%s/%s: streamed: %v", tc.label, query.label, err)
			}
			want, err := query.run(whole)
			if err != nil {
				t.Fatalf("%s/%s: whole: %v", tc.label, query.label, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: streamed store diverges from whole-insert store:\n got %+v\nwant %+v", tc.label, query.label, got, want)
			}
		}
	}
}

// TestAppendParityJoins pins the join paths — including the parallel scan
// join, which reads spectra from worker goroutines — on stores whose
// spectrum records are deliberately stale (fewer appended points than the
// refresh cadence, so every join must derive spectra on demand).
func TestAppendParityJoins(t *testing.T) {
	const windowLen = 32
	walks := appendWalks(24, windowLen+5, 17) // 5 appends < spectrumRefreshEvery
	streamed, _ := NewDB(windowLen, Options{})
	whole, _ := NewDB(windowLen, Options{})
	buildByAppends(t, streamed, walks, windowLen)
	buildWhole(t, whole, walks, windowLen)

	tr := transform.MovingAverage(windowLen, 4)
	for _, tc := range []struct {
		label string
		run   func(*DB) (any, error)
	}{
		{"scan-join", func(db *DB) (any, error) {
			p, _, err := db.SelfJoin(8, tr, JoinScanEarlyAbandon)
			return p, err
		}},
		{"parallel-scan-join", func(db *DB) (any, error) {
			p, _, err := db.SelfJoinScanParallel(8, tr, 4)
			return p, err
		}},
		{"index-join", func(db *DB) (any, error) {
			p, _, err := db.SelfJoin(8, tr, JoinIndexTransform)
			return p, err
		}},
		{"two-sided", func(db *DB) (any, error) {
			p, _, err := db.JoinTwoSided(8, transform.Reverse(windowLen), tr)
			return p, err
		}},
	} {
		got, err := tc.run(streamed)
		if err != nil {
			t.Fatalf("%s: streamed: %v", tc.label, err)
		}
		want, err := tc.run(whole)
		if err != nil {
			t.Fatalf("%s: whole: %v", tc.label, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streamed store diverges on stale spectra:\n got %+v\nwant %+v", tc.label, got, want)
		}
	}
}

// TestAppendInPlaceShare checks that the in-place index path actually
// carries the bulk of streaming updates (single-point drifts rarely leave
// their leaf).
func TestAppendInPlaceShare(t *testing.T) {
	const windowLen = 64
	walks := appendWalks(30, windowLen+100, 7)
	db, err := NewDB(windowLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range walks {
		if _, err := db.Insert(fmt.Sprintf("W%04d", i), w[:windowLen]); err != nil {
			t.Fatal(err)
		}
	}
	var inPlace, total int
	for i, w := range walks {
		for _, x := range w[windowLen:] {
			info, err := db.Append(fmt.Sprintf("W%04d", i), []float64{x})
			if err != nil {
				t.Fatal(err)
			}
			total++
			if info.InPlace {
				inPlace++
			}
			if info.ID != int64(i) {
				t.Fatalf("append reassigned ID: got %d want %d", info.ID, i)
			}
		}
	}
	if inPlace*2 < total {
		t.Fatalf("in-place share too low: %d of %d", inPlace, total)
	}
	if err := db.idx.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendStorageStable: in-place rewrites must not grow the relations.
func TestAppendStorageStable(t *testing.T) {
	const windowLen = 64
	db, err := NewDB(windowLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := appendWalks(1, windowLen+500, 3)[0]
	if _, err := db.Insert("W", w[:windowLen]); err != nil {
		t.Fatal(err)
	}
	timePages, freqPages := db.timeRel.Pages(), db.freqRel.Pages()
	for _, x := range w[windowLen:] {
		if _, err := db.Append("W", []float64{x}); err != nil {
			t.Fatal(err)
		}
	}
	if db.timeRel.Pages() != timePages || db.freqRel.Pages() != freqPages {
		t.Fatalf("appends grew storage: time %d->%d, freq %d->%d pages",
			timePages, db.timeRel.Pages(), freqPages, db.freqRel.Pages())
	}
}

func TestAppendValidation(t *testing.T) {
	db, err := NewDB(64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := appendWalks(1, 64, 5)[0]
	if _, err := db.Insert("W", w); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append("missing", []float64{1}); err == nil {
		t.Fatal("append to unknown series succeeded")
	}
	if _, err := db.Append("W", nil); err == nil {
		t.Fatal("empty append succeeded")
	}
	if _, err := db.Append("W", []float64{math.NaN()}); err == nil {
		t.Fatal("NaN append succeeded")
	}
	if _, err := db.Append("W", []float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf append succeeded")
	}
	// A rejected append must leave the stored window untouched.
	got, err := db.Series(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatal("rejected append mutated the stored series")
	}
}

// TestAppendLongerThanWindow: streaming more points than the window holds
// keeps only the tail, exactly like inserting the tail whole.
func TestAppendLongerThanWindow(t *testing.T) {
	const windowLen = 32
	w := appendWalks(1, 3*windowLen, 9)[0]
	db, _ := NewDB(windowLen, Options{})
	if _, err := db.Insert("W", w[:windowLen]); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append("W", w[windowLen:]); err != nil {
		t.Fatal(err)
	}
	got, err := db.Series(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w[len(w)-windowLen:]) {
		t.Fatal("oversized append did not keep the window tail")
	}
}

// TestCheckWithinMatchesRange: per-name verification must agree exactly
// with the indexed range answer, including after appends and for unknown
// names.
func TestCheckWithinMatchesRange(t *testing.T) {
	const windowLen = 64
	walks := appendWalks(40, windowLen+60, 13)
	for _, shards := range []int{1, 4} {
		var eng Engine
		if shards == 1 {
			db, _ := NewDB(windowLen, Options{})
			eng = db
		} else {
			s, _ := NewSharded(windowLen, shards, Options{})
			eng = s
		}
		buildByAppends(t, eng, walks, windowLen)

		q := RangeQuery{
			Values:    walks[0][len(walks[0])-windowLen:],
			Eps:       5,
			Transform: transform.MovingAverage(windowLen, 8),
			BothSides: true,
		}
		res, _, err := eng.RangeIndexed(q)
		if err != nil {
			t.Fatal(err)
		}
		inAnswer := map[string]float64{}
		for _, r := range res {
			inAnswer[r.Name] = r.Dist
		}
		for i := range walks {
			name := fmt.Sprintf("W%04d", i)
			dist, within, err := eng.CheckWithin(name, q)
			if err != nil {
				t.Fatal(err)
			}
			wantDist, wantIn := inAnswer[name]
			if within != wantIn {
				t.Fatalf("shards=%d: CheckWithin(%s) = %v, range answer says %v", shards, name, within, wantIn)
			}
			if within && dist != wantDist {
				t.Fatalf("shards=%d: CheckWithin(%s) dist %g != range dist %g", shards, name, dist, wantDist)
			}
		}
		if _, within, err := eng.CheckWithin("missing", q); err != nil || within {
			t.Fatalf("shards=%d: CheckWithin of unknown name = (%v, %v)", shards, within, err)
		}
	}
}

// TestPrefilterSound: every range answer's feature point must hit the
// prefilter rectangle (Lemma 1 — a miss proves non-membership).
func TestPrefilterSound(t *testing.T) {
	const windowLen = 64
	walks := appendWalks(50, windowLen+40, 21)
	db, _ := NewDB(windowLen, Options{})
	buildByAppends(t, db, walks, windowLen)

	for _, tr := range []transform.T{
		transform.Identity(windowLen),
		transform.MovingAverage(windowLen, 8),
		transform.Reverse(windowLen),
	} {
		for _, eps := range []float64{0.5, 2, 6} {
			q := RangeQuery{Values: walks[1][len(walks[1])-windowLen:], Eps: eps, Transform: tr}
			pf, err := db.PlanPrefilter(q)
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := db.RangeIndexed(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				p, ok := db.FeaturePoint(r.ID)
				if !ok {
					t.Fatalf("no feature point for %s", r.Name)
				}
				if !pf.Hit(p, eps) {
					t.Fatalf("transform %v eps %g: answer %s (dist %g) missed the prefilter", tr, eps, r.Name, r.Dist)
				}
			}
			// +Inf threshold admits everything.
			if !pf.Hit(db.points[0], math.Inf(1)) {
				t.Fatal("prefilter rejected a point at eps=+Inf")
			}
		}
	}
}
