package core

import (
	"testing"

	"repro/internal/transform"
)

func TestDeleteRemovesFromAllQueryPaths(t *testing.T) {
	db, data := newTestDB(t, 100, 41, Options{})
	// Pick a series with a planted near-duplicate (index n/2 duplicates
	// index 0 in newTestDB).
	victim := db.Name(int64(50))
	if !db.Delete(victim) {
		t.Fatal("delete of live series failed")
	}
	if db.Delete(victim) {
		t.Fatal("double delete returned true")
	}
	if db.Len() != 99 {
		t.Fatalf("Len = %d", db.Len())
	}
	if err := db.Index().Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := data[0]
	rq := RangeQuery{Values: q, Eps: 1000, Transform: transform.Identity(testLen)}
	for name, run := range map[string]func(RangeQuery) ([]Result, ExecStats, error){
		"indexed":  db.RangeIndexed,
		"scanFreq": db.RangeScanFreq,
		"scanTime": db.RangeScanTime,
	} {
		res, _, err := run(rq)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 99 {
			t.Fatalf("%s: %d results after delete, want 99", name, len(res))
		}
		for _, r := range res {
			if r.Name == victim {
				t.Fatalf("%s: deleted series still returned", name)
			}
		}
	}
	nn, _, err := db.NNIndexed(NNQuery{Values: q, K: 99, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range nn {
		if r.Name == victim {
			t.Fatal("deleted series appears in NN results")
		}
	}
	pairs, _, err := db.SelfJoin(0.8, transform.Identity(testLen), JoinIndexTransform)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if db.Name(p.A) == victim || db.Name(p.B) == victim {
			t.Fatal("deleted series appears in join results")
		}
	}
}

func TestDeleteThenReinsertSameName(t *testing.T) {
	db, data := newTestDB(t, 20, 42, Options{})
	name := db.Name(3)
	if !db.Delete(name) {
		t.Fatal("delete failed")
	}
	// Re-insert under the same name with different values; new ID must not
	// collide with any live record.
	newVals := make([]float64, testLen)
	copy(newVals, data[7])
	for i := range newVals {
		newVals[i] += 0.01
	}
	id, err := db.Insert(name, newVals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Series(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range newVals {
		if got[i] != newVals[i] {
			t.Fatal("reinserted values wrong — likely an ID collision")
		}
	}
	if db.Len() != 20 {
		t.Fatalf("Len = %d", db.Len())
	}
	// All other series still retrievable with correct values.
	for i := 0; i < 20; i++ {
		if i == 3 {
			continue
		}
		vals, err := db.Series(db.IDs()[i])
		if err != nil {
			t.Fatalf("series %d unreadable after delete/reinsert: %v", i, err)
		}
		if len(vals) != testLen {
			t.Fatal("length corrupted")
		}
	}
}

func TestDeleteAllThenBulkForbidden(t *testing.T) {
	db, _ := newTestDB(t, 10, 43, Options{})
	for _, id := range append([]int64(nil), db.IDs()...) {
		if !db.Delete(db.Name(id)) {
			t.Fatal("delete failed")
		}
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", db.Len())
	}
	// InsertBulk requires a *fresh* DB: the relations still hold dead
	// records, so IDs would collide.
	good := make([]float64, testLen)
	if err := db.InsertBulk([]string{"fresh"}, [][]float64{good}); err == nil {
		t.Fatal("bulk insert after deletions should be rejected")
	}
}
