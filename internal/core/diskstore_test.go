package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/transform"
)

// newTestEngine builds a store of the requested width with the given
// options, registering Close on test cleanup.
func newTestEngine(t *testing.T, length, shards int, opts Options) Engine {
	t.Helper()
	var (
		e   Engine
		err error
	)
	if shards > 1 {
		e, err = NewSharded(length, shards, opts)
	} else {
		e, err = NewDB(length, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// compareEngines asserts two engines answer a query identically.
func compareEngines[T any](t *testing.T, label string, want, got Engine, run func(Engine) (T, error)) {
	t.Helper()
	w, err := run(want)
	if err != nil {
		t.Fatalf("%s: resident: %v", label, err)
	}
	g, err := run(got)
	if err != nil {
		t.Fatalf("%s: disk: %v", label, err)
	}
	if !reflect.DeepEqual(g, w) {
		t.Errorf("%s: disk store diverges from resident:\n got %+v\nwant %+v", label, g, w)
	}
}

// allKindsParity runs one query of every kind — range (all three
// strategies), NN (both), self join, two-sided join, subsequence scan —
// against both engines and requires identical answers.
func allKindsParity(t *testing.T, resident, disk Engine, length int) {
	t.Helper()
	mavg := transform.MovingAverage(length, 5)
	revMavg, err := transform.Reverse(length).Compose(mavg)
	if err != nil {
		t.Fatal(err)
	}
	q := queryValues(length, 7)

	rq := RangeQuery{Values: q, Eps: 6, Transform: mavg}
	compareEngines(t, "range/indexed", resident, disk, func(e Engine) ([]Result, error) {
		r, _, err := e.RangeIndexed(rq)
		return r, err
	})
	compareEngines(t, "range/scanfreq", resident, disk, func(e Engine) ([]Result, error) {
		r, _, err := e.RangeScanFreq(rq)
		return r, err
	})
	compareEngines(t, "range/scantime", resident, disk, func(e Engine) ([]Result, error) {
		r, _, err := e.RangeScanTime(rq)
		return r, err
	})

	nq := NNQuery{Values: q, K: 7, Transform: mavg}
	compareEngines(t, "nn/indexed", resident, disk, func(e Engine) ([]Result, error) {
		r, _, err := e.NNIndexed(nq)
		return r, err
	})
	compareEngines(t, "nn/scan", resident, disk, func(e Engine) ([]Result, error) {
		r, _, err := e.NNScan(nq)
		return r, err
	})

	for _, m := range []JoinMethod{JoinScanEarlyAbandon, JoinIndexTransform} {
		m := m
		compareEngines(t, fmt.Sprintf("selfjoin/%s", m), resident, disk, func(e Engine) ([]JoinPair, error) {
			p, _, err := e.SelfJoin(3.5, mavg, m)
			return p, err
		})
	}
	compareEngines(t, "join-two-sided", resident, disk, func(e Engine) ([]JoinPair, error) {
		p, _, err := e.JoinTwoSided(3.0, revMavg, mavg)
		return p, err
	})

	sub := queryValues(length/2, 9)
	compareEngines(t, "subsequence", resident, disk, func(e Engine) ([]SubseqResult, error) {
		r, _, err := e.SubsequenceScan(sub, 40)
		return r, err
	})
}

// TestDiskBackedLowCacheParity is the larger-than-RAM acceptance check: a
// disk-backed store whose buffer pool holds ~10% of its pages answers
// every query kind exactly like a fully resident store, through churn
// (deletes, updates) and a compaction into a fresh file generation.
func TestDiskBackedLowCacheParity(t *testing.T) {
	const (
		count  = 200
		length = 64
	)
	data := dataset.RandomWalks(count, length, 11)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			resident := newTestEngine(t, length, shards, Options{})
			// Each record occupies one page per relation at the default page
			// size, so count/shards pages per shard; a tenth of that is the
			// pool.
			cache := count / shards / 10
			dir := t.TempDir()
			disk := newTestEngine(t, length, shards, Options{Backing: dir, CachePages: cache})

			for _, d := range data {
				if _, err := resident.Insert(d.Name, d.Values); err != nil {
					t.Fatal(err)
				}
				if _, err := disk.Insert(d.Name, d.Values); err != nil {
					t.Fatal(err)
				}
			}
			ps := disk.PoolStats()
			if !ps.DiskBacked {
				t.Fatal("store with Backing set reports DiskBacked=false")
			}
			if got, want := ps.Capacity, 2*shards*cache; got != want {
				t.Fatalf("pool capacity %d, want %d (2 relations x %d shards x %d pages)", got, want, shards, cache)
			}

			allKindsParity(t, resident, disk, length)

			ps = disk.PoolStats()
			if ps.Misses == 0 || ps.Evictions == 0 {
				t.Errorf("a 10%% cache should fault and evict; stats %+v", ps)
			}
			if ps.Resident > ps.Capacity {
				t.Errorf("resident %d exceeds capacity %d", ps.Resident, ps.Capacity)
			}
			if ps.Pinned != 0 {
				t.Errorf("%d frames still pinned after queries returned", ps.Pinned)
			}

			// Churn: in-place updates exercise the pool's write-through, and
			// deletes leave dead pages for Compact.
			for i := 0; i < count; i += 7 {
				name := fmt.Sprintf("W%04d", i)
				if !resident.Delete(name) || !disk.Delete(name) {
					t.Fatalf("delete %s missing", name)
				}
			}
			for i := 1; i < count; i += 11 {
				if i%7 == 0 {
					continue
				}
				name := fmt.Sprintf("W%04d", i)
				vals := queryValues(length, int64(i))
				if _, err := resident.Update(name, vals); err != nil {
					t.Fatal(err)
				}
				if _, err := disk.Update(name, vals); err != nil {
					t.Fatal(err)
				}
			}
			allKindsParity(t, resident, disk, length)

			// Compact rewrites the page files into a fresh generation and
			// removes the old one; answers must not change.
			reclaimed, err := disk.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if reclaimed <= 0 {
				t.Errorf("compaction after deletes reclaimed %d pages", reclaimed)
			}
			if _, err := resident.Compact(); err != nil {
				t.Fatal(err)
			}
			allKindsParity(t, resident, disk, length)
			var files []string
			err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
				if err == nil && !d.IsDir() {
					files = append(files, filepath.Base(path))
				}
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(files), 2*shards; got != want {
				t.Errorf("backing dir holds %d page files after compaction, want %d (old generations removed): %v", got, want, files)
			}
			for _, f := range files {
				if f == "time-g000.pages" || f == "freq-g000.pages" {
					t.Errorf("generation-0 file %s survived compaction", f)
				}
			}
		})
	}
}

// TestSnapshotCompatVersions is the snapshot compatibility gate: a TSQ3
// reader must load every format version — TSQ1 (legacy single-store),
// TSQ2 (legacy sharded), and TSQ3 with its derived sections — at shard
// counts 1 and 4, and answer queries identically to the store that wrote
// the snapshot. It also pins down when the packed trees are adopted
// versus re-packed.
func TestSnapshotCompatVersions(t *testing.T) {
	const (
		count  = 150
		length = 64
	)
	data := dataset.RandomWalks(count, length, 23)
	names := make([]string, len(data))
	values := make([][]float64, len(data))
	for i, d := range data {
		names[i] = d.Name
		values[i] = d.Values
	}
	build := func(t *testing.T, shards int) Engine {
		e := newTestEngine(t, length, shards, Options{})
		if err := e.InsertBulk(names, values); err != nil {
			t.Fatal(err)
		}
		return e
	}
	srcDB := build(t, 1).(*DB)
	srcSharded := build(t, 4).(*Sharded)

	fixtures := []struct {
		label string
		write func(io.Writer) (int64, error)
	}{
		{"tsq1", srcDB.WriteLegacyTo},
		{"tsq2-shards4", srcSharded.WriteLegacyTo},
		{"tsq3-shards1", srcDB.WriteTo},
		{"tsq3-shards4", srcSharded.WriteTo},
	}
	for _, fx := range fixtures {
		var buf bytes.Buffer
		if _, err := fx.write(&buf); err != nil {
			t.Fatalf("%s: %v", fx.label, err)
		}
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/load-shards=%d", fx.label, shards), func(t *testing.T) {
				got, err := ReadEngine(bytes.NewReader(buf.Bytes()), Options{}, shards)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { got.Close() })
				if got.Len() != count {
					t.Fatalf("loaded %d series, want %d", got.Len(), count)
				}
				if got.Shards() != shards {
					t.Fatalf("loaded %d shards, want %d", got.Shards(), shards)
				}
				allKindsParity(t, srcDB, got, length)
			})
		}
	}
}

// TestSnapshotAdoptsTree pins the adopt-versus-rebuild dispatch: loading
// a TSQ3 snapshot at its recorded shard count must reproduce the writer's
// index byte-for-byte (the serialized form of the adopted tree equals the
// slab that was written), whereas a TSQ1 load rebuilds with STR.
func TestSnapshotAdoptsTree(t *testing.T) {
	const (
		count  = 80
		length = 32
	)
	data := dataset.RandomWalks(count, length, 31)
	src := newTestEngine(t, length, 1, Options{}).(*DB)
	for _, d := range data {
		if _, err := src.Insert(d.Name, d.Values); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a few so live IDs are gappy: the writer's dense remap and the
	// loader's 0..n-1 assignment must still line up.
	for _, name := range []string{"W0003", "W0040", "W0079"} {
		if !src.Delete(name) {
			t.Fatalf("delete %s missing", name)
		}
	}
	var snap bytes.Buffer
	if _, err := src.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEngine(bytes.NewReader(snap.Bytes()), Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { got.Close() })
	db := got.(*DB)

	var wantTree, gotTree bytes.Buffer
	identity := func(id int64) (int64, bool) { return id, true }
	if err := db.Index().EncodeTree(&gotTree, identity); err != nil {
		t.Fatal(err)
	}
	if err := src.Index().EncodeTree(&wantTree, densePositions(src.IDs())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTree.Bytes(), wantTree.Bytes()) {
		t.Error("adopted tree differs from the serialized slab")
	}
	// IDs re-densify on load (the writer's remap), so compare answers by
	// name and distance rather than full Result structs.
	rq := RangeQuery{Values: queryValues(length, 7), Eps: 6, Transform: transform.MovingAverage(length, 5)}
	want, _, err := src.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	have, _, err := db.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	if len(have) != len(want) {
		t.Fatalf("loaded store answers %d results, writer %d", len(have), len(want))
	}
	for i := range want {
		if have[i].Name != want[i].Name || have[i].Dist != want[i].Dist {
			t.Fatalf("result %d: got %s@%g, want %s@%g", i, have[i].Name, have[i].Dist, want[i].Name, want[i].Dist)
		}
	}
}

// TestJoinPrefilterRetag is the regression test for unbounded absorb
// growth: repeated misses dilate the prefilter's extent monotonically,
// and Retag must shed that growth by re-anchoring to the store's live
// feature bounds.
func TestJoinPrefilterRetag(t *testing.T) {
	const length = 32
	db := newTestEngine(t, length, 1, Options{}).(*DB)
	for _, d := range dataset.RandomWalks(60, length, 41) {
		if _, err := db.Insert(d.Name, d.Values); err != nil {
			t.Fatal(err)
		}
	}
	id := transform.Identity(length)
	jp, err := db.JoinPrefilter(JoinQuery{Eps: 1.0, Left: id, Right: id})
	if err != nil {
		t.Fatal(err)
	}
	if jp.Absorbed() != 0 {
		t.Fatalf("fresh prefilter reports %d absorbed misses", jp.Absorbed())
	}

	// A far-away outlier misses and is absorbed into the extent.
	dims := db.Schema().Dims()
	outlier := make(geom.Point, dims)
	for i := range outlier {
		outlier[i] = 1e6
	}
	if jp.Hit(outlier) {
		t.Fatal("extreme outlier should miss the prefilter")
	}
	if jp.Absorbed() != 1 {
		t.Fatalf("after one miss, Absorbed() = %d", jp.Absorbed())
	}
	// The absorbed outlier has grown the extent: a nearby point now hits
	// even though no stored series is anywhere near it.
	near := outlier.Clone()
	near[0] += 0.5
	if !jp.Hit(near) {
		t.Fatal("point near an absorbed outlier should hit the grown extent")
	}

	// Retag re-anchors to the live store bounds, shedding the growth.
	jp.Retag(db.FeatureBounds())
	if jp.Absorbed() != 0 {
		t.Fatalf("after Retag, Absorbed() = %d", jp.Absorbed())
	}
	if jp.Hit(near) {
		t.Fatal("retagged extent should have shed the absorbed outlier")
	}
	if jp.Absorbed() != 1 {
		t.Fatalf("the post-Retag miss should absorb again, Absorbed() = %d", jp.Absorbed())
	}

	// A point inside the live extent still hits after Retag — re-anchoring
	// must not under-approximate the store.
	for _, sid := range db.IDs()[:10] {
		p, ok := db.FeaturePoint(sid)
		if !ok {
			t.Fatalf("no feature point for id %d", sid)
		}
		if !jp.Hit(p) {
			t.Fatalf("stored series %d escaped the retagged extent", sid)
		}
	}
}
