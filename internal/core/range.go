package core

import (
	"fmt"
	"math"

	"repro/internal/feature"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/transform"
)

// RangeQuery describes one similarity range query: find every stored series
// x with D(T(nf(x)), nf(q)) <= Eps, where nf is the normal form and T the
// transformation (paper Section 4's "Query" statement with the pattern
// expression denoting the whole relation).
type RangeQuery struct {
	// Values is the raw query series. Its length must be the DB length,
	// except for warped queries where it must be WarpFactor * length.
	Values []float64
	// Eps is the similarity threshold.
	Eps float64
	// Transform is the safe transformation to apply to the stored side;
	// use transform.Identity(n) for plain queries. It must span the DB
	// length (n coefficients).
	Transform transform.T
	// Moments optionally restricts the mean/std index dimensions
	// (GK95-style shift/scale bounds). Zero value: unbounded.
	Moments feature.MomentBounds
	// WarpFactor marks Transform as the time-warping transformation with
	// this stretch factor m >= 2: the query series has length m*n and
	// verification happens in the time domain on warped normal forms
	// (Appendix A). 0 or 1 means no warping.
	WarpFactor int
	// BothSides applies Transform to the query as well as the stored
	// series: answers satisfy D(T(nf(x)), T(nf(q))) <= Eps. This is the
	// reading of the paper's motivating examples ("their 3-day moving
	// averages look the same") and of join method (d); the default
	// (false) is the paper's formal one-sided Query statement. Not
	// compatible with WarpFactor.
	BothSides bool
	// ForceTransform routes the traversal through the full transformation
	// machinery even when Transform is the identity. The Figure 8/9
	// experiments measure the overhead of exactly this path against the
	// plain fast path ("the identity transformation was chosen ... the
	// difference between the two curves is only a constant").
	ForceTransform bool
	// Delta is the approximate tier's guaranteed relative error bound
	// (APPROX delta): 0 answers exactly through the unchanged exact
	// path; delta > 0 lets verification stop at a ladder rung once the
	// residual-energy upper bound proves the answer within
	// (1+Delta)*Eps. Approximate answers are a superset of the exact
	// answer set — nothing within Eps is ever dropped — and every
	// member's true distance is at most (1+Delta)*Eps, carried per
	// result as Result.Bound. See approx.go.
	Delta float64
	// Prep, when set, carries the stored-record planning artifacts of a
	// query that is itself a stored series (the by-name entry points and
	// the language's SERIES 'name' clause). The planner then reuses the
	// indexed feature point and the stored energy-ordered spectrum
	// instead of recomputing the normal form, the feature extraction,
	// and the query FFT from Values — both artifacts are bit-identical
	// to what the recomputation would produce, so plans are unchanged,
	// just cheaper. Ignored for warped queries (their query series is
	// not a stored record's window).
	Prep *QueryPrep
}

// QueryPrep is a stored series' precomputed index-space identity: the
// feature point it is indexed under and its energy-ordered normal-form
// spectrum, as assembled by Engine.QueryPrep. Both are private copies or
// immutable snapshots, safe to hold across an execution.
type QueryPrep struct {
	Point    []float64
	Spectrum []complex128
}

func (db *DB) validateRange(q RangeQuery) error {
	if q.Eps < 0 {
		return fmt.Errorf("core: negative eps %g", q.Eps)
	}
	if q.Delta < 0 || math.IsNaN(q.Delta) {
		return fmt.Errorf("core: approx delta must be >= 0, got %g", q.Delta)
	}
	if q.Transform.Dims() != db.length {
		return fmt.Errorf("core: transformation %s spans %d coefficients, DB length is %d", q.Transform, q.Transform.Dims(), db.length)
	}
	wantLen := db.length
	if q.WarpFactor >= 2 {
		wantLen = db.length * q.WarpFactor
		if q.BothSides {
			return fmt.Errorf("core: BothSides is not compatible with warped queries")
		}
	}
	if len(q.Values) != wantLen {
		return fmt.Errorf("core: query length %d, want %d", len(q.Values), wantLen)
	}
	return nil
}

// queryFeaturePoint extracts the index-space feature point of the query
// series. For warped queries the query series is longer than the DB length;
// its own normal-form coefficients X_1..X_K are directly comparable to the
// warp-transformed stored coefficients (Appendix A, Equation 18).
func (db *DB) queryFeaturePoint(q RangeQuery) ([]float64, error) {
	p, err := db.schema.Extract(q.Values)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// verifier checks one candidate exactly against the threshold eps,
// returning (within, distance). The eps parameter lets nearest-neighbor
// refinement tighten the abandonment threshold as better answers arrive.
type verifier func(id int64, eps float64) (bool, float64, error)

// rangePlan is the query-side preprocessing of Algorithm 2: the query
// feature point, the transformation's affine index action, and the
// precomputed verification vectors (query spectrum and energy-ordered
// transformation coefficients — or the query normal form for warped
// queries). None of it depends on a store's contents, only on the shared
// schema and length, so a sharded execution computes one plan and reuses
// it across every shard's traversal instead of redoing two FFTs and the
// feature extraction per shard.
type rangePlan struct {
	q  RangeQuery
	qp []float64
	m  transform.AffineMap
	// Verification precomputation: qn for warped queries, (a, b, Q) for
	// frequency-domain verification.
	qn   []float64
	a, b []complex128
	Q    []complex128
	// Approximate-tier precomputation (Delta > 0; see approx.go). relax
	// is (1+Delta) and relaxSq its square — relaxSq is 1 on exact plans
	// so the NN traversal test multiplies through as an IEEE identity.
	// rung0 is the planner's estimate of the accepting ladder rung (the
	// cold default is overridden from measured resolve depths) — it
	// feeds EXPLAIN and the Rung stat; the ladder itself starts at
	// ladderStart. sufA2[ord] and sufBQ2[ord] are the *squared* suffix
	// max |a| and suffix norm of (b - Q) from checkpoint position
	// ladderStart<<ord on (recorded only at checkpoints — the walk reads
	// them nowhere else); energy bounds the stored spectrum's total
	// energy (n, by the unitary transform on normal forms) and doubles
	// as the "frequency ladder available" flag.
	relax   float64
	relaxSq float64
	rung0   int
	sufA2   [ladderRungs]float64
	sufBQ2  [ladderRungs]float64
	energy  float64
}

// planRange validates q and builds its execution plan.
func (db *DB) planRange(q RangeQuery) (*rangePlan, error) {
	if err := db.validateRange(q); err != nil {
		return nil, err
	}
	p := &rangePlan{q: q, relax: 1, relaxSq: 1}
	// A stored-record query plans off its indexed point and stored
	// spectrum; the recomputation below is the fallback for literal
	// query series (and for warped queries, whose query side is longer
	// than any stored record).
	prep := q.Prep
	if prep != nil && (q.WarpFactor >= 2 ||
		len(prep.Point) != db.schema.Dims() || len(prep.Spectrum) != db.length) {
		prep = nil
	}
	var qp []float64
	if prep != nil {
		qp = prep.Point
	} else {
		var err error
		qp, err = db.queryFeaturePoint(q)
		if err != nil {
			return nil, err
		}
	}
	m, err := db.schema.Map(q.Transform)
	if err != nil {
		return nil, err
	}
	if q.ForceTransform {
		m.Force = true
	}
	if q.BothSides && !m.Identity() {
		// Two-sided semantics: the search centers on the transformed query
		// point, so the filter compares T(x) against T(q).
		qp = m.ApplyPoint(qp)
	}
	p.qp, p.m = qp, m
	if q.WarpFactor >= 2 {
		p.qn = series.NormalForm(q.Values)
		if q.Delta > 0 {
			p.initApprox(db.length)
		}
		return p, nil
	}
	p.a, p.b = db.permuteTransform(q.Transform)
	var Q []complex128
	if prep != nil {
		Q = prep.Spectrum
	} else {
		Q = db.querySpectrum(q.Values)
	}
	if q.BothSides {
		tQ := make([]complex128, len(Q))
		for f := range Q {
			tQ[f] = p.a[f]*Q[f] + p.b[f]
		}
		Q = tQ
	}
	p.Q = Q
	if q.Delta > 0 {
		p.initApprox(db.length)
	}
	return p, nil
}

// verifierFor builds the post-processing step of Algorithm 2 from a plan:
// exact distance on full records with early abandoning. Frequency-domain
// verification serves every length-preserving transformation; warped
// queries verify in the time domain on warped normal forms.
func (db *DB) verifierFor(p *rangePlan, st *ExecStats) verifier {
	if p.q.WarpFactor >= 2 {
		m := p.q.WarpFactor
		qn := p.qn
		return func(id int64, eps float64) (bool, float64, error) {
			raw, err := db.Series(id)
			if err != nil {
				return false, 0, err
			}
			warped := series.Warp(series.NormalForm(raw), m)
			within, terms := series.EuclideanWithin(warped, qn, eps)
			st.DistanceTerms += int64(terms)
			if !within {
				return false, 0, nil
			}
			return true, series.EuclideanDistance(warped, qn), nil
		}
	}
	a, b, Q := p.a, p.b, p.Q
	return func(id int64, eps float64) (bool, float64, error) {
		within, dist, terms, err := db.viewTransformedWithin(id, a, b, Q, eps)
		if err != nil {
			return false, 0, err
		}
		st.DistanceTerms += int64(terms)
		return within, dist, nil
	}
}

// verifyWarp is the warped-query branch of verifierFor as a direct method
// call, so hot executions verify without building a closure.
func (db *DB) verifyWarp(p *rangePlan, st *ExecStats, id int64, eps float64) (bool, float64, error) {
	raw, err := db.Series(id)
	if err != nil {
		return false, 0, err
	}
	warped := series.Warp(series.NormalForm(raw), p.q.WarpFactor)
	within, terms := series.EuclideanWithin(warped, p.qn, eps)
	st.DistanceTerms += int64(terms)
	if !within {
		return false, 0, nil
	}
	return true, series.EuclideanDistance(warped, p.qn), nil
}

// verifyFreq is the frequency-domain branch of verifierFor as a direct
// method call over an arena's page buffer: exact distance off stored page
// views with early abandoning, allocating nothing.
func (db *DB) verifyFreq(p *rangePlan, ar *execArena, st *ExecStats, id int64, eps float64) (bool, float64, error) {
	within, dist, terms, err := db.viewTransformedWithinBuf(id, p.a, p.b, p.Q, eps, &ar.pages)
	if err != nil {
		return false, 0, err
	}
	st.DistanceTerms += int64(terms)
	return within, dist, nil
}

// rangeIndexedInto runs the search and post-processing phases of
// Algorithm 2 against this store, accumulating filter costs into st and
// appending verified answers to dst. The filter runs over the index's
// flat-slab batch traversal into arena scratch; steady state the whole
// pass allocates nothing.
func (db *DB) rangeIndexedInto(p *rangePlan, ar *execArena, st *ExecStats, dst []Result) ([]Result, error) {
	markApprox(p, st)
	ids, searchStats := db.idx.RangeIDs(p.qp, p.q.Eps, p.m, p.q.Moments, !db.opts.DisablePartialPrune, &ar.sc, ar.ids[:0])
	ar.ids = ids
	st.NodeAccesses += searchStats.NodesVisited
	st.Candidates += len(ids)

	warp := p.q.WarpFactor >= 2
	approx := !warp && p.approx()
	for _, id := range ids {
		var (
			within      bool
			dist, bound float64
			err         error
		)
		switch {
		case warp:
			within, dist, err = db.verifyWarp(p, st, id, p.q.Eps)
			bound = dist
		case approx:
			within, dist, bound, err = db.verifyFreqApprox(p, ar, st, id, p.q.Eps, false)
		default:
			within, dist, err = db.verifyFreq(p, ar, st, id, p.q.Eps)
		}
		if err != nil {
			return dst, err
		}
		if within {
			r := Result{ID: id, Name: db.names[id], Dist: dist}
			if approx || (warp && p.approx()) {
				r.Bound = bound
			}
			dst = append(dst, r)
		}
	}
	return dst, nil
}

// rangeIndexedPlanned is rangeIndexedInto over a pooled arena — the form
// the sharded fan-out and the method-pinned entry points use.
func (db *DB) rangeIndexedPlanned(p *rangePlan, st *ExecStats) ([]Result, error) {
	ar := getArena()
	defer putArena(ar)
	return db.rangeIndexedInto(p, ar, st, nil)
}

// RangeIndexed answers a range query with the paper's Algorithm 2:
// (1) preprocessing — extract the query feature point and the
// transformation's affine index action; (2) search — traverse the index
// applying the transformation to every rectangle on the fly; (3)
// post-processing — verify every candidate against its full record.
// Results are sorted by (distance, ID).
func (db *DB) RangeIndexed(q RangeQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	p, err := db.planRange(q)
	if err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()
	out, err := db.rangeIndexedPlanned(p, &st)
	if err != nil {
		return nil, st, err
	}
	sortResults(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// rangeScanFreqInto runs the frequency-domain scan against this store,
// appending verified answers to dst. Like rangeIndexedInto it verifies
// through the arena's page buffer, so the steady-state scan allocates
// nothing beyond result growth.
func (db *DB) rangeScanFreqInto(p *rangePlan, ar *execArena, st *ExecStats, dst []Result) ([]Result, error) {
	markApprox(p, st)
	warp := p.q.WarpFactor >= 2
	approx := !warp && p.approx()
	for _, id := range db.ids {
		st.Candidates++
		var (
			within      bool
			dist, bound float64
			err         error
		)
		switch {
		case warp:
			within, dist, err = db.verifyWarp(p, st, id, p.q.Eps)
			bound = dist
		case approx:
			within, dist, bound, err = db.verifyFreqApprox(p, ar, st, id, p.q.Eps, false)
		default:
			within, dist, err = db.verifyFreq(p, ar, st, id, p.q.Eps)
		}
		if err != nil {
			return dst, err
		}
		if within {
			r := Result{ID: id, Name: db.names[id], Dist: dist}
			if approx || (warp && p.approx()) {
				r.Bound = bound
			}
			dst = append(dst, r)
		}
	}
	return dst, nil
}

// rangeScanFreqPlanned is rangeScanFreqInto over a pooled arena.
func (db *DB) rangeScanFreqPlanned(p *rangePlan, st *ExecStats) ([]Result, error) {
	ar := getArena()
	defer putArena(ar)
	return db.rangeScanFreqInto(p, ar, st, nil)
}

// RangeScanFreq answers the same query by sequentially scanning the
// frequency-domain relation with early abandoning — the stronger of the
// paper's two scan baselines ("we do the sequential scanning on the
// relation that stores the series in the frequency domain ... the distance
// computation process can skip many sequences within the first few
// coefficients").
func (db *DB) RangeScanFreq(q RangeQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	p, err := db.planRange(q)
	if err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()
	out, err := db.rangeScanFreqPlanned(p, &st)
	if err != nil {
		return nil, st, err
	}
	sortResults(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// RangeScanTime is the naive baseline: sequentially scan the raw
// time-domain relation, reconstruct each normal form's spectrum, apply the
// transformation, and compute the full distance with no early abandoning.
func (db *DB) RangeScanTime(q RangeQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	if err := db.validateRange(q); err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	var out []Result
	if q.WarpFactor >= 2 {
		qn := series.NormalForm(q.Values)
		for _, id := range db.ids {
			st.Candidates++
			raw, err := db.Series(id)
			if err != nil {
				return nil, st, err
			}
			warped := series.Warp(series.NormalForm(raw), q.WarpFactor)
			st.DistanceTerms += int64(len(warped))
			if d := series.EuclideanDistance(warped, qn); d <= q.Eps {
				out = append(out, Result{ID: id, Name: db.names[id], Dist: d})
			}
		}
	} else {
		qn := series.NormalForm(q.Values)
		if q.BothSides {
			qn = q.Transform.ApplyTime(qn)
		}
		for _, id := range db.ids {
			st.Candidates++
			raw, err := db.Series(id)
			if err != nil {
				return nil, st, err
			}
			tx := q.Transform.ApplyTime(series.NormalForm(raw))
			st.DistanceTerms += int64(len(tx))
			if d := series.EuclideanDistance(tx, qn); d <= q.Eps {
				out = append(out, Result{ID: id, Name: db.names[id], Dist: d})
			}
		}
	}
	sortResults(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}
