package core

import (
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/telemetry"
)

// Span is one timed step of a query execution: a node of the trace tree
// ExecStats carries through the plan → fan-out → merge → cache-tag
// pipeline. Spans record durations and nesting only (no absolute
// offsets), which is all the TRACE surface and the slow-query log need
// and keeps recording to two monotonic clock reads per span.
type Span struct {
	// Name identifies the step: "plan", "fanout", "shard", "search",
	// "merge", "cache-tag".
	Name string
	// Shard is the shard index a shard-scoped span ran on; -1 otherwise.
	Shard int
	// Duration is the span's wall time.
	Duration time.Duration
	// Children are the nested steps, in execution order.
	Children []Span
}

func span(name string, d time.Duration, children ...Span) Span {
	return Span{Name: name, Shard: -1, Duration: d, Children: children}
}

func shardSpan(shard int, d time.Duration) Span {
	return Span{Name: "shard", Shard: shard, Duration: d}
}

func init() {
	telemetry.Describe("tsq_plan_executions_total", "Planned executions by query kind and resolved strategy.")
	telemetry.Describe("tsq_plan_duration_seconds", "Engine execution latency of planned queries.")
	telemetry.Describe("tsq_plan_cost_error_ratio", "Planner absolute relative candidate-count error |actual-est|/max(est,1) per query kind.")
	telemetry.Describe("tsq_shard_candidates_total", "Verified candidates per shard across fan-out executions.")
	telemetry.Describe("tsq_shard_node_accesses_total", "Index node accesses per shard across fan-out executions.")
	telemetry.Describe("tsq_shard_results_total", "Merged answers contributed per shard across fan-out executions.")
	telemetry.Describe("tsq_pair_checks_total", "Candidate pair checks per shard across join executions.")
	telemetry.Describe("tsq_fanout_imbalance_ratio", "Max/mean per-shard candidate counts of multi-shard executions.")
	telemetry.Describe("tsq_spectrum_refreshes_total", "Exact-FFT spectrum record rewrites on the append path.")
	telemetry.Describe("tsq_approx_queries_total", "Approximate-tier (APPROX delta > 0) executions by query kind.")
	telemetry.Describe("tsq_approx_bound_tightness", "Realized mean bound tightness LB/UB of approximate executions (1 = bound closed exactly).")
}

// finishExec stamps a completed planned execution with its resolved
// strategy and span tree, then reports it to the metrics registry. Every
// Exec* implementation calls it last, beside history.Observe.
func finishExec(pl *plan.Plan, st *ExecStats, spans []Span) {
	st.Strategy = pl.Strategy.String()
	st.Spans = spans
	observeExec(pl, st)
}

// finishExecSpans stamps a hot-path execution, building the two-span
// search/merge trace only when something will read it — the process
// metrics registry or a TRACE statement (pl.Trace). observeExec never
// reads st.Spans, so skipping construction otherwise loses nothing and
// keeps the steady-state hot path allocation-free.
func finishExecSpans(pl *plan.Plan, st *ExecStats, searchD, mergeD time.Duration) {
	if telemetry.Enabled() || pl.Trace {
		finishExec(pl, st, []Span{span("search", searchD), span("merge", mergeD)})
		return
	}
	finishExec(pl, st, nil)
}

// fanSpans builds the span forest of a per-shard fan-out: a "fanout"
// span with one child per shard, followed by the merge step.
func fanSpans(fan, merge time.Duration, shards []ShardExec) []Span {
	children := make([]Span, len(shards))
	for i, sh := range shards {
		children[i] = shardSpan(sh.Shard, sh.Elapsed)
	}
	return []Span{span("fanout", fan, children...), span("merge", merge)}
}

// execMetricCache memoizes the per-kind×strategy plan handles and
// shardMetricCache the per-shard counters: observeExec runs on every
// planned execution, and registry lookups (label-key building plus a map
// read) are too expensive to repeat there.
var (
	execMetricCache   sync.Map // "kind\x00strategy" -> execMetrics
	shardMetricCache  sync.Map // shard int -> shardMetrics
	approxMetricCache sync.Map // kind string -> approxMetrics
)

type execMetrics struct {
	count     *telemetry.Counter
	latency   *telemetry.Histogram
	costError *telemetry.Histogram
	imbalance *telemetry.Histogram
}

type shardMetrics struct {
	candidates   *telemetry.Counter
	nodeAccesses *telemetry.Counter
	results      *telemetry.Counter
	pairChecks   *telemetry.Counter
}

type approxMetrics struct {
	count     *telemetry.Counter
	tightness *telemetry.Histogram
}

func approxHandles(kind string) approxMetrics {
	if v, ok := approxMetricCache.Load(kind); ok {
		return v.(approxMetrics)
	}
	v, _ := approxMetricCache.LoadOrStore(kind, approxMetrics{
		count:     telemetry.Count("tsq_approx_queries_total", "kind", kind),
		tightness: telemetry.HistogramOf("tsq_approx_bound_tightness", telemetry.RatioBuckets, "kind", kind),
	})
	return v.(approxMetrics)
}

func execHandles(kind, strat string) execMetrics {
	key := kind + "\x00" + strat
	if v, ok := execMetricCache.Load(key); ok {
		return v.(execMetrics)
	}
	v, _ := execMetricCache.LoadOrStore(key, execMetrics{
		count: telemetry.Count("tsq_plan_executions_total", "kind", kind, "strategy", strat),
		latency: telemetry.HistogramOf("tsq_plan_duration_seconds", telemetry.LatencyBuckets,
			"kind", kind, "strategy", strat),
		costError: telemetry.HistogramOf("tsq_plan_cost_error_ratio", telemetry.RatioBuckets,
			"kind", kind),
		imbalance: telemetry.HistogramOf("tsq_fanout_imbalance_ratio", telemetry.RatioBuckets,
			"kind", kind),
	})
	return v.(execMetrics)
}

func shardHandles(shard int) shardMetrics {
	if v, ok := shardMetricCache.Load(shard); ok {
		return v.(shardMetrics)
	}
	lbl := strconv.Itoa(shard)
	v, _ := shardMetricCache.LoadOrStore(shard, shardMetrics{
		candidates:   telemetry.Count("tsq_shard_candidates_total", "shard", lbl),
		nodeAccesses: telemetry.Count("tsq_shard_node_accesses_total", "shard", lbl),
		results:      telemetry.Count("tsq_shard_results_total", "shard", lbl),
		pairChecks:   telemetry.Count("tsq_pair_checks_total", "shard", lbl),
	})
	return v.(shardMetrics)
}

// observeExec reports one planned execution to the process-wide metrics
// registry: latency and count by kind×strategy, the planner's absolute
// relative cost error, per-shard provenance counters, and the fan-out's
// candidate imbalance. Called beside every history.Observe so the ring
// and the scrape surface always agree.
func observeExec(pl *plan.Plan, st *ExecStats) {
	if !telemetry.Enabled() {
		return
	}
	m := execHandles(pl.Kind, pl.Strategy.String())
	m.count.Inc()
	m.latency.Observe(st.Elapsed.Seconds())
	if pl.Approx != nil {
		am := approxHandles(pl.Kind)
		am.count.Inc()
		if st.EarlyAccepts > 0 {
			am.tightness.Observe(st.BoundTightSum / float64(st.EarlyAccepts))
		}
	}
	if est := pl.Est.Candidates; est > 0 {
		m.costError.Observe(math.Abs(float64(st.Candidates)-est) / math.Max(est, 1))
	}
	join := pl.Kind == "selfjoin" || pl.Kind == "join"
	maxCand, sumCand := 0, 0
	for _, sh := range st.Shards {
		sm := shardHandles(sh.Shard)
		sm.candidates.Add(int64(sh.Candidates))
		sm.nodeAccesses.Add(int64(sh.NodeAccesses))
		sm.results.Add(int64(sh.Results))
		if join {
			sm.pairChecks.Add(int64(sh.Candidates))
		}
		sumCand += sh.Candidates
		if sh.Candidates > maxCand {
			maxCand = sh.Candidates
		}
	}
	if len(st.Shards) > 1 && sumCand > 0 {
		mean := float64(sumCand) / float64(len(st.Shards))
		m.imbalance.Observe(float64(maxCand) / mean)
	}
}
