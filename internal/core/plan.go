package core

import (
	"fmt"
	"time"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// This file is the engine half of plan-first query execution: both store
// implementations build first-class plan.Plan values — resolving the
// index-vs-scan decision per query from the store's own statistics — and
// execute them, reusing the plan's precomputed transforms and spectra so
// planning is paid once per query, not once per strategy probe or shard.
//
// The planner compares the query's Lemma 1 search rectangle against the
// store's feature-space extent (the k-index root MBR, mapped through the
// query transformation — the exact space the traversal intersects in) and
// calibrates the geometric estimate with an EWMA of measured candidate
// counts fed back after every planned indexed execution. See package plan
// for the cost model.

// Shards returns 1: a DB is a single partition. (Sharded returns its
// partition count; the shared method lets every Engine consumer speak the
// shard-target vocabulary of plans, provenance, and cache tags.)
func (db *DB) Shards() int { return 1 }

// ShardOf returns 0: every series of a single-store DB lives in the one
// partition.
func (db *DB) ShardOf(name string) int { return 0 }

// ShardOf returns the hash-assigned shard index of a series name (whether
// or not the name is currently stored — partition assignment is a pure
// hash, which is what lets the server tag cached results with shard sets
// without consulting the catalog).
func (s *Sharded) ShardOf(name string) int { return s.shardFor(name) }

// ShardExec is one shard's share of a fan-out execution — the per-shard
// provenance the merge step records so EXPLAIN can show where cost and
// answers came from and the server can tag cached results.
type ShardExec struct {
	Shard        int
	NodeAccesses int
	PageReads    int64
	Candidates   int
	Results      int
	// Elapsed is this shard's wall time inside the fan-out; zero when the
	// execution strides workers across shards instead of fanning per shard
	// (the global nested-scan join).
	Elapsed time.Duration
}

// plannerInput assembles the planner's view of this store for a planned
// range query.
func (db *DB) plannerInput(p *rangePlan) plan.Input {
	in := plan.Input{
		Series:  db.Len(),
		Height:  db.idx.Tree().Height(),
		LeafCap: db.opts.RTree.MaxEntries,
		Angular: db.schema.Angular(),
		Rect:    db.schema.SearchRect(p.qp, p.q.Eps, p.q.Moments),
	}
	in.Bounds = transformedBounds(db.idx.Tree().Bounds(), p)
	return in
}

// transformedBounds maps a store's feature-space MBR through the query
// transformation — the space the index traversal compares rectangles in.
// The zero rect (empty store) passes through.
func transformedBounds(b geom.Rect, p *rangePlan) geom.Rect {
	return applyBounds(b, p.m)
}

// buildRangePlan resolves the strategy for a validated range query. want
// is the caller's request: plan.Auto lets the planner choose between the
// index and the frequency-domain scan; anything else is forced. Moment-
// bounded queries pin the index even under Auto — the scan baselines
// deliberately ignore mean/std bounds, so the strategies are not
// answer-equivalent there.
func buildRangePlan(q RangeQuery, p *rangePlan, want plan.Strategy, in plan.Input, tr *plan.Tracker, shards []int, kind string) *plan.Plan {
	choice, est, reason := plan.Choose(in, tr)
	pl := &plan.Plan{
		Kind:      kind,
		Transform: q.Transform.String(),
		Eps:       q.Eps,
		Strategy:  choice,
		Reason:    reason,
		Rect:      in.Rect,
		Shards:    shards,
		Est:       est,
		Internal:  p,
	}
	switch {
	case want != plan.Auto:
		pl.Forced = true
		pl.Strategy = want
		pl.Reason = fmt.Sprintf("forced %v by caller; planner would pick %v (%s)", want, choice, reason)
	case q.Moments != (feature.MomentBounds{}):
		pl.Strategy = plan.Index
		pl.Reason = "index: moment-bounded query (scan baselines ignore mean/std bounds)"
	}
	attachApprox(pl, p, q.Delta, tr)
	return pl
}

// attachApprox prices the approximate tier on a built plan and installs
// the planner-selected first ladder rung on the engine-side
// precomputation (planRange seeds a cold default; the planner refines it
// from measured resolve depths).
func attachApprox(pl *plan.Plan, p *rangePlan, delta float64, tr *plan.Tracker) {
	if delta <= 0 {
		return
	}
	length := 0
	if p.energy > 0 {
		length = len(p.Q)
	}
	plan.AttachApprox(pl, delta, length, tr)
	if pl.Approx != nil && pl.Approx.Rung > 0 {
		p.rung0 = pl.Approx.Rung
	}
}

// PlanRange validates a range query and builds its execution plan; want
// plan.Auto defers the index-vs-scan choice to the planner. The returned
// plan carries this engine's precomputed query spectrum and transformation
// coefficients — execute it on the same engine with ExecRange.
func (db *DB) PlanRange(q RangeQuery, want plan.Strategy) (*plan.Plan, error) {
	p, err := db.planRange(q)
	if err != nil {
		return nil, err
	}
	return buildRangePlan(q, p, want, db.plannerInput(p), db.tracker, plan.AllShards(1), "range"), nil
}

// rangePlanOf recovers the engine-side precomputation from a plan,
// replanning when the plan came from elsewhere (defensive; plans are
// documented engine-specific).
func (db *DB) rangePlanOf(q RangeQuery, pl *plan.Plan) (*rangePlan, error) {
	if rp, ok := pl.Internal.(*rangePlan); ok && rp != nil {
		return rp, nil
	}
	return db.planRange(q)
}

// ExecRange executes a plan built by PlanRange, feeding measured
// selectivity back to the planner after indexed executions.
func (db *DB) ExecRange(q RangeQuery, pl *plan.Plan) ([]Result, ExecStats, error) {
	return db.ExecRangeInto(q, pl, nil)
}

// ExecRangeInto is ExecRange appending answers to dst (pass a [:0] slice
// to reuse its backing array). This is the engine's zero-allocation hot
// path: the whole execution — batch index traversal, page-view
// verification, sorting, planner feedback, history, metrics bookkeeping —
// runs inside a pooled arena, so a warm call whose dst has capacity
// allocates nothing.
func (db *DB) ExecRangeInto(q RangeQuery, pl *plan.Plan, dst []Result) ([]Result, ExecStats, error) {
	if pl.Strategy == plan.ScanTime {
		out, st, err := db.RangeScanTime(q)
		if err == nil {
			if telemetry.Enabled() || pl.Trace {
				finishExec(pl, &st, []Span{span("search", st.Elapsed)})
			} else {
				finishExec(pl, &st, nil)
			}
			out = append(dst, out...)
		}
		return out, st, err
	}
	rp, err := db.rangePlanOf(q, pl)
	if err != nil {
		return nil, ExecStats{}, err
	}
	db.queryCount.Add(1)
	ar := getArena()
	defer putArena(ar)
	var st ExecStats
	start := time.Now()
	reads0 := db.pageReads()
	out := dst
	switch pl.Strategy {
	case plan.Index:
		out, err = db.rangeIndexedInto(rp, ar, &st, out)
	case plan.ScanFreq:
		out, err = db.rangeScanFreqInto(rp, ar, &st, out)
	default:
		err = fmt.Errorf("core: plan carries unresolved strategy %v", pl.Strategy)
	}
	searchD := time.Since(start)
	if err != nil {
		return nil, st, err
	}
	mergeT := time.Now()
	sortResults(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	mergeD := time.Since(mergeT)
	st.Elapsed = time.Since(start)
	if feedRange(q, pl) {
		db.tracker.ObserveRange(pl.Est.Candidates, st.Candidates, st.NodeAccesses, db.Len())
	}
	observeApprox(db.tracker, pl, &st, db.Len())
	db.maybeExploreRange(q, pl, rp, ar)
	db.history.Observe(pl, st.Candidates, st.NodeAccesses, st.Results, st.Elapsed)
	finishExecSpans(pl, &st, searchD, mergeD)
	return out, st, nil
}

// exploreEvery is the sampling period of the planner's range exploration
// probes: every exploreEvery-th unforced scan-routed range execution
// re-measures the index side with a count-only traversal.
const exploreEvery = 16

// maybeExploreRange occasionally probes the index on scan-routed range
// queries. Scan executions produce no index feedback, so a planner that
// settles on scans would otherwise never notice the index becoming
// cheaper again (store shrinkage, eps drift, calibration overshoot); the
// probe runs the batch traversal without verification — node accesses and
// a candidate count only — and feeds the measurement to the range
// calibrator. Probe costs stay out of the query's ExecStats: they are
// planner bookkeeping, not answer work.
func (db *DB) maybeExploreRange(q RangeQuery, pl *plan.Plan, rp *rangePlan, ar *execArena) {
	if pl.Strategy != plan.ScanFreq || pl.Forced || q.Moments != (feature.MomentBounds{}) {
		return
	}
	if db.exploreTick.Add(1)%exploreEvery != 0 {
		return
	}
	ids, searchStats := db.idx.RangeIDs(rp.qp, rp.q.Eps, rp.m, rp.q.Moments, !db.opts.DisablePartialPrune, &ar.sc, ar.ids[:0])
	ar.ids = ids
	db.tracker.ObserveRange(pl.Est.Candidates, len(ids), searchStats.NodesVisited, db.Len())
}

// feedRange reports whether an execution's measured costs may calibrate
// the planner: indexed runs only, and never moment-bounded queries — the
// moment bounds shrink the rectangle in ways the selectivity estimate
// does not model, so their candidate counts would drag the calibration
// toward zero and mislead every later unbounded query.
func feedRange(q RangeQuery, pl *plan.Plan) bool {
	return pl.Strategy == plan.Index && q.Moments == (feature.MomentBounds{})
}

// PlanNN validates a nearest-neighbor query and builds its plan. NN
// queries carry no threshold at planning time, so the decision comes from
// measured NN feedback (index is the cold default).
func (db *DB) PlanNN(q NNQuery, want plan.Strategy) (*plan.Plan, error) {
	p, err := planNN(db, q)
	if err != nil {
		return nil, err
	}
	return buildNNPlan(q, p, want, db.Len(), db.tracker, plan.AllShards(1)), nil
}

func buildNNPlan(q NNQuery, p *rangePlan, want plan.Strategy, series int, tr *plan.Tracker, shards []int) *plan.Plan {
	choice, est, reason := plan.ChooseNN(series, q.Delta, tr)
	pl := &plan.Plan{
		Kind:      "nn",
		Transform: q.Transform.String(),
		K:         q.K,
		Strategy:  choice,
		Reason:    reason,
		Shards:    shards,
		Est:       est,
		Internal:  p,
	}
	if want != plan.Auto {
		pl.Forced = true
		pl.Strategy = want
		pl.Reason = fmt.Sprintf("forced %v by caller; planner would pick %v (%s)", want, choice, reason)
	}
	attachApprox(pl, p, q.Delta, tr)
	return pl
}

// ExecNN executes a plan built by PlanNN.
func (db *DB) ExecNN(q NNQuery, pl *plan.Plan) ([]Result, ExecStats, error) {
	return db.ExecNNInto(q, pl, nil)
}

// ExecNNInto is ExecNN appending answers to dst (pass a [:0] slice to
// reuse its backing array). Like ExecRangeInto, a warm call whose dst has
// capacity for k results allocates nothing.
func (db *DB) ExecNNInto(q NNQuery, pl *plan.Plan, dst []Result) ([]Result, ExecStats, error) {
	rp, ok := pl.Internal.(*rangePlan)
	if !ok || rp == nil {
		var err error
		rp, err = planNN(db, q)
		if err != nil {
			return nil, ExecStats{}, err
		}
	}
	db.queryCount.Add(1)
	ar := getArena()
	defer putArena(ar)
	st := ar.resetStats()
	start := time.Now()
	reads0 := db.pageReads()
	best := &ar.top
	best.reset(q.K)
	var err error
	switch pl.Strategy {
	case plan.Index:
		err = db.nnIndexedArena(rp, best, ar, st)
	case plan.ScanFreq, plan.ScanTime:
		err = db.nnScanArena(rp, best, ar, st)
	default:
		err = fmt.Errorf("core: plan carries unresolved strategy %v", pl.Strategy)
	}
	searchD := time.Since(start)
	if err != nil {
		return nil, *st, err
	}
	mergeT := time.Now()
	out := best.appendResults(dst)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	mergeD := time.Since(mergeT)
	st.Elapsed = time.Since(start)
	// Approximate runs feed their own model: the relaxed traversal's
	// shrunken candidate counts would corrupt the exact NN estimate.
	if pl.Strategy == plan.Index && pl.Approx == nil {
		db.tracker.ObserveNN(st.Candidates, st.NodeAccesses, db.Len())
	}
	observeApprox(db.tracker, pl, st, db.Len())
	db.history.Observe(pl, st.Candidates, st.NodeAccesses, st.Results, st.Elapsed)
	finishExecSpans(pl, st, searchD, mergeD)
	return out, *st, nil
}

// featureBounds returns the union of every shard index's MBR plus the
// maximum index height — the sharded store's feature-space extent, taken
// under each shard's shared lock in turn (per-shard consistency, like the
// fan-out itself).
func (s *Sharded) featureBounds() (geom.Rect, int) {
	var union geom.Rect
	height := 0
	for si := range s.shards {
		s.locks[si].RLock()
		b := s.shards[si].idx.Tree().Bounds()
		if h := s.shards[si].idx.Tree().Height(); h > height {
			height = h
		}
		s.locks[si].RUnlock()
		if b.Dims() == 0 {
			continue
		}
		if union.Dims() == 0 {
			union = b.Clone()
			continue
		}
		for d := range union.Lo {
			if b.Lo[d] < union.Lo[d] {
				union.Lo[d] = b.Lo[d]
			}
			if b.Hi[d] > union.Hi[d] {
				union.Hi[d] = b.Hi[d]
			}
		}
	}
	return union, height
}

// PlanRange plans a range query across the whole sharded store: one plan
// (the preprocessing depends only on the shared schema and length), priced
// against the union of the shards' feature-space extents and the store's
// own execution feedback.
func (s *Sharded) PlanRange(q RangeQuery, want plan.Strategy) (*plan.Plan, error) {
	p, err := s.shards[0].planRange(q)
	if err != nil {
		return nil, err
	}
	bounds, height := s.featureBounds()
	in := plan.Input{
		Series:  s.Len(),
		Height:  height,
		LeafCap: s.shards[0].opts.RTree.MaxEntries,
		Angular: s.Schema().Angular(),
		Rect:    s.Schema().SearchRect(p.qp, q.Eps, q.Moments),
		Bounds:  transformedBounds(bounds, p),
	}
	return buildRangePlan(q, p, want, in, s.tracker, plan.AllShards(len(s.shards)), "range"), nil
}

// ExecRange executes a range plan with the planned strategy fanned out to
// every shard, recording per-shard provenance in the merged ExecStats.
func (s *Sharded) ExecRange(q RangeQuery, pl *plan.Plan) ([]Result, ExecStats, error) {
	if pl.Strategy == plan.ScanTime {
		out, st, err := s.RangeScanTime(q)
		if err == nil {
			finishExec(pl, &st, st.Spans)
		}
		return out, st, err
	}
	rp, ok := pl.Internal.(*rangePlan)
	if !ok || rp == nil {
		var err error
		rp, err = s.shards[0].planRange(q)
		if err != nil {
			return nil, ExecStats{}, err
		}
	}
	var run func(*DB, *rangePlan, *ExecStats) ([]Result, error)
	switch pl.Strategy {
	case plan.Index:
		run = (*DB).rangeIndexedPlanned
	case plan.ScanFreq:
		run = (*DB).rangeScanFreqPlanned
	default:
		return nil, ExecStats{}, fmt.Errorf("core: plan carries unresolved strategy %v", pl.Strategy)
	}
	out, st, err := s.rangeFanWith(rp, run)
	if err != nil {
		return nil, st, err
	}
	if feedRange(q, pl) {
		s.tracker.ObserveRange(pl.Est.Candidates, st.Candidates, st.NodeAccesses, s.Len())
	}
	observeApprox(s.tracker, pl, &st, s.Len())
	s.history.Observe(pl, st.Candidates, st.NodeAccesses, st.Results, st.Elapsed)
	finishExec(pl, &st, st.Spans)
	return out, st, nil
}

// ExecRangeInto is ExecRange appending answers to dst. The fan-out's
// per-shard buffers still allocate (parallel workers need private
// slices); the Into form exists so Engine consumers can program against
// one vocabulary — on a single-store DB it is the zero-allocation path.
func (s *Sharded) ExecRangeInto(q RangeQuery, pl *plan.Plan, dst []Result) ([]Result, ExecStats, error) {
	out, st, err := s.ExecRange(q, pl)
	if err != nil {
		return nil, st, err
	}
	return append(dst, out...), st, nil
}

// PlanNN plans a nearest-neighbor query across the sharded store.
func (s *Sharded) PlanNN(q NNQuery, want plan.Strategy) (*plan.Plan, error) {
	p, err := planNN(s.shards[0], q)
	if err != nil {
		return nil, err
	}
	return buildNNPlan(q, p, want, s.Len(), s.tracker, plan.AllShards(len(s.shards))), nil
}

// ExecNN executes an NN plan with the planned strategy fanned out to every
// shard under one shared k-th-best bound.
func (s *Sharded) ExecNN(q NNQuery, pl *plan.Plan) ([]Result, ExecStats, error) {
	rp, ok := pl.Internal.(*rangePlan)
	if !ok || rp == nil {
		var err error
		rp, err = planNN(s.shards[0], q)
		if err != nil {
			return nil, ExecStats{}, err
		}
	}
	var run func(*DB, *rangePlan, *topK, *ExecStats) error
	switch pl.Strategy {
	case plan.Index:
		run = (*DB).nnIndexedInto
	case plan.ScanFreq, plan.ScanTime:
		run = (*DB).nnScanInto
	default:
		return nil, ExecStats{}, fmt.Errorf("core: plan carries unresolved strategy %v", pl.Strategy)
	}
	out, st, err := s.nnFanWith(q.K, rp, run)
	if err != nil {
		return nil, st, err
	}
	if pl.Strategy == plan.Index && pl.Approx == nil {
		s.tracker.ObserveNN(st.Candidates, st.NodeAccesses, s.Len())
	}
	observeApprox(s.tracker, pl, &st, s.Len())
	s.history.Observe(pl, st.Candidates, st.NodeAccesses, st.Results, st.Elapsed)
	finishExec(pl, &st, st.Spans)
	return out, st, nil
}

// ExecNNInto is ExecNN appending answers to dst (see ExecRangeInto).
func (s *Sharded) ExecNNInto(q NNQuery, pl *plan.Plan, dst []Result) ([]Result, ExecStats, error) {
	out, st, err := s.ExecNN(q, pl)
	if err != nil {
		return nil, st, err
	}
	return append(dst, out...), st, nil
}

// PlanJoin plans an all-pairs query across the whole sharded store: one
// plan (the preprocessing depends only on the shared schema and length),
// priced against the union of the shards' transformed extents and the
// store's measured join feedback.
func (s *Sharded) PlanJoin(q JoinQuery, want plan.Strategy) (*plan.Plan, error) {
	jp, err := s.shards[0].planJoin(q)
	if err != nil {
		return nil, err
	}
	if jp.mapErr != nil {
		return scanOnlyJoinPlan(q, jp, want, s.Len(), plan.AllShards(len(s.shards)))
	}
	bounds, height := s.featureBounds()
	bounds = applyBounds(bounds, jp.lm)
	sel := joinSelectivity(s.IDs(), s.FeaturePoint, s.Schema(), jp, bounds, s.Len())
	in := plan.JoinInput{
		Series:      s.Len(),
		Height:      height,
		LeafCap:     s.shards[0].opts.RTree.MaxEntries,
		Selectivity: sel,
		TwoSided:    q.TwoSided,
		Identity:    jp.lm.Identity() && jp.rm.Identity(),
	}
	return buildJoinPlan(q, jp, want, in, s.tracker, plan.AllShards(len(s.shards))), nil
}

// ExecJoin executes a join plan with the planned method fanned out across
// all shards — index probes partitioned by owning shard, scans striding
// workers over the pinned catalog — recording per-shard provenance in the
// merged ExecStats and feeding measured candidates back to the join
// calibrator.
func (s *Sharded) ExecJoin(q JoinQuery, pl *plan.Plan) ([]JoinPair, ExecStats, error) {
	jp, ok := pl.Internal.(*joinPlan)
	if !ok || jp == nil {
		var err error
		jp, err = s.shards[0].planJoin(q)
		if err != nil {
			return nil, ExecStats{}, err
		}
	}
	var (
		out []JoinPair
		st  ExecStats
		err error
	)
	switch pl.Strategy {
	case plan.Index:
		if jp.mapErr != nil {
			return nil, ExecStats{}, jp.mapErr
		}
		out, st, err = s.joinIndexFan(jp, !jp.q.TwoSided)
	case plan.ScanFreq:
		out, st, err = s.joinScanFan(jp, true)
	case plan.ScanTime:
		out, st, err = s.joinScanFan(jp, false)
	default:
		return nil, ExecStats{}, fmt.Errorf("core: plan carries unresolved strategy %v", pl.Strategy)
	}
	if err != nil {
		return nil, st, err
	}
	if pl.Strategy == plan.Index {
		s.tracker.ObserveJoin(pl.Est.Candidates, st.Candidates, st.NodeAccesses, s.Len())
	}
	s.history.Observe(pl, st.Candidates, st.NodeAccesses, st.Results, st.Elapsed)
	finishExec(pl, &st, st.Spans)
	return out, st, nil
}

// PlannerStats exposes the store's planner feedback (diagnostics, tests).
func (db *DB) PlannerStats() plan.Snapshot { return db.tracker.Stats() }

// PlannerStats exposes the sharded store's planner feedback.
func (s *Sharded) PlannerStats() plan.Snapshot { return s.tracker.Stats() }

// PlanHistory returns the store's recent executed plans, oldest first.
func (db *DB) PlanHistory() []plan.Record { return db.history.Recent() }

// PlanHistory returns the sharded store's recent executed plans.
func (s *Sharded) PlanHistory() []plan.Record { return s.history.Recent() }

// PlanDrift returns the store's per-kind cost-error percentile
// checkpoints — planner calibration drift over time, where PlanHistory
// shows only the current ring.
func (db *DB) PlanDrift() []plan.DriftPoint { return db.history.Drift() }

// PlanDrift returns the sharded store's cost-error drift checkpoints.
func (s *Sharded) PlanDrift() []plan.DriftPoint { return s.history.Drift() }
