package core

import (
	"io"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/transform"
)

// Engine is the query-processor surface shared by the single-store DB and
// the hash-partitioned Sharded store. The public tsq layer, the query
// language, and the HTTP server all program against this interface, so a
// store can be swapped from one R*-tree behind one lock to N independent
// shards with parallel fan-out without touching any caller.
//
// Concurrency contracts differ by implementation and are part of each
// type's documentation: a *DB is safe for concurrent readers but needs
// external synchronization around writes; a *Sharded synchronizes
// internally with one RWMutex per shard.
type Engine interface {
	// Store shape.
	Len() int
	Length() int
	Schema() feature.Schema
	// Shards reports the partition count (1 for a single-store DB);
	// ShardOf maps a series name to its hash-assigned partition. Together
	// they give every consumer — plans, per-shard provenance, the server's
	// dependency-tagged cache — one shard vocabulary.
	Shards() int
	ShardOf(name string) int

	// Catalog access. IDs are unique across the whole store (global across
	// shards) and assigned in insertion order. Names returns a consistent
	// snapshot of the live names in insertion order.
	IDs() []int64
	Names() []string
	Name(id int64) string
	IDByName(name string) (int64, bool)
	Series(id int64) ([]float64, error)
	FeaturePoint(id int64) (geom.Point, bool)
	// QueryPrep snapshots a stored series' planning artifacts (indexed
	// feature point + stored spectrum) so by-name queries plan without
	// recomputing them from raw values.
	QueryPrep(id int64) (*QueryPrep, bool)

	// Writes. Append is the streaming path: it slides a series' window
	// forward in place (stable ID, incremental feature maintenance, in-place
	// index and storage updates) where Update is a delete + reinsert under a
	// fresh ID.
	Insert(name string, values []float64) (int64, error)
	InsertBulk(names []string, values [][]float64) error
	Update(name string, values []float64) (int64, error)
	Append(name string, points []float64) (AppendInfo, error)
	Delete(name string) bool
	Compact() (pagesReclaimed int, err error)
	// Close releases backing storage (the scratch page files of a
	// disk-backed store; a no-op for memory stores). The engine must not
	// be used afterwards.
	Close() error

	// Storage observability. PoolStats aggregates buffer-pool counters
	// across the store's relations (and shards); FeatureBounds returns the
	// feature-space MBR of the live series — what JoinPrefilter.Retag
	// re-anchors cached join geometry to.
	PoolStats() PoolStats
	FeatureBounds() geom.Rect

	// Standing-query support: exact single-series verification and the
	// Lemma 1 rectangle prefilter, used by monitors and by the server's
	// append-aware cache invalidation.
	CheckWithin(name string, q RangeQuery) (dist float64, within bool, err error)
	PlanPrefilter(q RangeQuery) (*Prefilter, error)

	// Persistence.
	WriteTo(w io.Writer) (int64, error)

	// Plan-first execution. PlanRange/PlanNN build a first-class plan.Plan
	// — resolving the index-vs-scan decision per query from maintained
	// store statistics when asked for plan.Auto — and ExecRange/ExecNN run
	// it, reusing the plan's precomputed transforms and spectra and (on
	// sharded stores) recording per-shard provenance in ExecStats.Shards.
	// Plans are engine-specific: execute a plan only on the engine that
	// built it. PlannerStats exposes the feedback the planner decides from.
	PlanRange(q RangeQuery, want plan.Strategy) (*plan.Plan, error)
	ExecRange(q RangeQuery, pl *plan.Plan) ([]Result, ExecStats, error)
	PlanNN(q NNQuery, want plan.Strategy) (*plan.Plan, error)
	ExecNN(q NNQuery, pl *plan.Plan) ([]Result, ExecStats, error)
	// ExecRangeInto/ExecNNInto are the zero-allocation forms of
	// ExecRange/ExecNN: answers append to dst (pass a [:0] slice to reuse
	// its backing array). On a single-store DB a warm call whose dst has
	// capacity allocates nothing; repeated callers (monitors, benchmarks,
	// tight server loops) should prefer them.
	ExecRangeInto(q RangeQuery, pl *plan.Plan, dst []Result) ([]Result, ExecStats, error)
	ExecNNInto(q NNQuery, pl *plan.Plan, dst []Result) ([]Result, ExecStats, error)
	// PlanJoin/ExecJoin are the planned all-pairs path: the planner prices
	// the paper's four Table 1 join methods (store cardinality, sampled
	// eps selectivity against the transformed store extent, measured join
	// feedback) and the execution fans the chosen method out with
	// per-shard provenance. Planned self joins report each unordered pair
	// once (A < B); two-sided joins report ordered pairs. The
	// method-pinned SelfJoin below keeps the paper's exact Table 1
	// accounting instead. JoinPrefilter builds the dependency geometry the
	// server's cache uses to invalidate join results selectively.
	PlanJoin(q JoinQuery, want plan.Strategy) (*plan.Plan, error)
	ExecJoin(q JoinQuery, pl *plan.Plan) ([]JoinPair, ExecStats, error)
	JoinPrefilter(q JoinQuery) (*JoinPrefilter, error)
	PlannerStats() plan.Snapshot
	// PlanHistory returns the recent executed plans (oldest first): every
	// planned range/NN/join execution records its estimated-vs-actual
	// cost, so drift and mispredictions stay observable behind /stats.
	// PlanDrift returns per-kind p50/p95 cost-error checkpoints over
	// time — longer-horizon calibration drift than the ring alone shows.
	PlanHistory() []plan.Record
	PlanDrift() []plan.DriftPoint

	// Queries. Result orderings are deterministic: (distance, ID) for
	// range/NN/subsequence answers, (A, B) for join pairs. The Range*/NN*
	// methods are the strategy-pinned primitives plans dispatch to; they
	// answer byte-identically to the planned paths.
	RangeIndexed(q RangeQuery) ([]Result, ExecStats, error)
	RangeScanFreq(q RangeQuery) ([]Result, ExecStats, error)
	RangeScanTime(q RangeQuery) ([]Result, ExecStats, error)
	NNIndexed(q NNQuery) ([]Result, ExecStats, error)
	NNScan(q NNQuery) ([]Result, ExecStats, error)
	SelfJoin(eps float64, t transform.T, method JoinMethod) ([]JoinPair, ExecStats, error)
	JoinTwoSided(eps float64, left, right transform.T) ([]JoinPair, ExecStats, error)
	SubsequenceScan(q []float64, eps float64) ([]SubseqResult, ExecStats, error)
}

var (
	_ Engine = (*DB)(nil)
	_ Engine = (*Sharded)(nil)
)
