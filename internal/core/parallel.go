package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/transform"
)

// SelfJoinScanParallel is the parallel form of join method (b): the outer
// loop of the nested scan is partitioned across workers, each running the
// early-abandoning inner comparison independently (reads of the paged
// relations are safe to share). Results match selfJoinScan exactly
// (ordering included, pairs are re-sorted by outer then inner ID); the
// page-read and distance-term counters aggregate across workers.
//
// workers <= 0 selects GOMAXPROCS. The paper predates multicore concerns;
// this exists because a modern adopter of the system would expect the
// embarrassingly parallel join to use the machine.
func (db *DB) SelfJoinScanParallel(eps float64, t transform.T, workers int) ([]JoinPair, ExecStats, error) {
	var st ExecStats
	if err := db.validateJoin(eps, t); err != nil {
		return nil, st, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()
	a, b := db.permuteTransform(t)
	limit := eps * eps
	n := len(db.ids)

	type partial struct {
		pairs      []JoinPair
		terms      int64
		candidates int
		err        error
	}
	results := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &results[w]
			// Strided outer partitioning balances the triangular workload
			// (early outer rows compare against more inner rows).
			for i := w; i < n; i += workers {
				X, err := db.spectrum(db.ids[i])
				if err != nil {
					out.err = err
					return
				}
				tx := make([]complex128, len(X))
				for f := range X {
					tx[f] = a[f]*X[f] + b[f]
				}
				for j := i + 1; j < n; j++ {
					view, err := db.specViewOf(db.ids[j])
					if err != nil {
						out.err = err
						return
					}
					out.candidates++
					var sum float64
					terms := 0
					abandoned := false
					for f := range tx {
						y := view.at(f)
						d := tx[f] - (a[f]*y + b[f])
						sum += real(d)*real(d) + imag(d)*imag(d)
						terms++
						if sum > limit {
							abandoned = true
							break
						}
					}
					out.terms += int64(terms)
					if !abandoned && sum <= limit {
						out.pairs = append(out.pairs, orderedPair(db.ids[i], db.ids[j], math.Sqrt(sum)))
					}
					db.releaseSpecView(db.ids[j], view)
				}
			}
		}(w)
	}
	wg.Wait()

	var out []JoinPair
	for _, r := range results {
		if r.err != nil {
			return nil, st, fmt.Errorf("core: parallel join worker: %w", r.err)
		}
		out = append(out, r.pairs...)
		st.DistanceTerms += r.terms
		st.Candidates += r.candidates
	}
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}
