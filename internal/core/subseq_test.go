package core

import (
	"math"
	"testing"

	"repro/internal/series"
	"repro/internal/transform"
)

func TestSubsequenceScanFindsPlantedWindow(t *testing.T) {
	db, data := newTestDB(t, 60, 46, Options{})
	// The query is an exact window of series 17.
	q := data[17][20:36]
	res, st, err := db.SubsequenceScan(q, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == 17 {
			found = true
			if r.Offset != 20 || r.Dist > 1e-9 {
				t.Fatalf("window located at offset %d dist %v, want 20 / 0", r.Offset, r.Dist)
			}
		}
	}
	if !found {
		t.Fatalf("planted window not found: %v", res)
	}
	if st.Candidates != db.Len() {
		t.Fatalf("scan visited %d of %d", st.Candidates, db.Len())
	}
	// Results sorted by distance.
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestSubsequenceScanMatchesOracle(t *testing.T) {
	db, data := newTestDB(t, 40, 47, Options{})
	q := data[3][10:18]
	eps := 5.0
	res, _, err := db.SubsequenceScan(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]float64{}
	for _, r := range res {
		got[r.ID] = r.Dist
	}
	for i, s := range data {
		want := series.MinSubsequenceDistance(s, q)
		if want <= eps {
			d, ok := got[int64(i)]
			if !ok {
				t.Fatalf("series %d missing (oracle dist %v)", i, want)
			}
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("series %d: dist %v, oracle %v", i, d, want)
			}
		} else if _, ok := got[int64(i)]; ok {
			t.Fatalf("series %d should not match (oracle dist %v)", i, want)
		}
	}
}

func TestSubsequenceScanValidation(t *testing.T) {
	db, _ := newTestDB(t, 5, 48, Options{})
	if _, _, err := db.SubsequenceScan(nil, 1); err == nil {
		t.Error("empty query should fail")
	}
	if _, _, err := db.SubsequenceScan(make([]float64, testLen+1), 1); err == nil {
		t.Error("over-long query should fail")
	}
	if _, _, err := db.SubsequenceScan(make([]float64, 4), -1); err == nil {
		t.Error("negative eps should fail")
	}
}

func TestUpdateReindexes(t *testing.T) {
	db, data := newTestDB(t, 30, 49, Options{})
	name := db.Name(5)
	// Replace series 5 with a copy of series 9 (plus noise): afterwards a
	// query around series 9 must find the updated series too.
	newVals := series.Clone(data[9])
	for i := range newVals {
		newVals[i] += 0.01
	}
	if _, err := db.Update(name, newVals); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 30 {
		t.Fatalf("Len = %d after update", db.Len())
	}
	res, _, err := db.RangeIndexed(RangeQuery{Values: data[9], Eps: 0.5, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Name == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("updated series not reindexed: %v", res)
	}
	// Unknown name fails.
	if _, err := db.Update("nope", newVals); err == nil {
		t.Error("update of unknown name should fail")
	}
}

func TestCompactReclaimsPages(t *testing.T) {
	db, data := newTestDB(t, 40, 53, Options{})
	// Delete half the series; pages stay allocated until compaction.
	for i := 0; i < 40; i += 2 {
		if !db.Delete(db.Name(int64(i))) {
			t.Fatal("delete failed")
		}
	}
	reclaimed, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatalf("compaction reclaimed %d pages", reclaimed)
	}
	// Everything still works after compaction.
	res, _, err := db.RangeIndexed(RangeQuery{Values: data[1], Eps: 1000, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("post-compaction query found %d, want 20", len(res))
	}
	for _, r := range res {
		vals, err := db.Series(r.ID)
		if err != nil {
			t.Fatalf("series %d unreadable after compaction: %v", r.ID, err)
		}
		if len(vals) != testLen {
			t.Fatal("series corrupted by compaction")
		}
	}
	// Compacting an already-compact DB reclaims nothing.
	again, err := db.Compact()
	if err != nil || again != 0 {
		t.Fatalf("second compaction reclaimed %d (%v)", again, err)
	}
}
