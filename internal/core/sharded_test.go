package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transform"
)

// buildParityStores loads the same batch into one unsharded DB and
// Sharded stores of each requested width, via plain inserts so IDs are
// assigned identically everywhere.
func buildParityStores(t *testing.T, count, length int, widths []int) (*DB, []*Sharded) {
	t.Helper()
	data := dataset.RandomWalks(count, length, 42)
	db, err := NewDB(length, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var shs []*Sharded
	for _, w := range widths {
		s, err := NewSharded(length, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shs = append(shs, s)
	}
	for _, d := range data {
		if _, err := db.Insert(d.Name, d.Values); err != nil {
			t.Fatal(err)
		}
		for _, s := range shs {
			if _, err := s.Insert(d.Name, d.Values); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, shs
}

// mutateParityStores applies the same deletes and updates everywhere, so
// parity holds on stores that have seen churn (swap-deleted ID lists,
// reassigned IDs).
func mutateParityStores(t *testing.T, db *DB, shs []*Sharded, count, length int) {
	t.Helper()
	for i := 0; i < count; i += 7 {
		name := fmt.Sprintf("W%04d", i)
		if !db.Delete(name) {
			t.Fatalf("delete %s missing in unsharded store", name)
		}
		for _, s := range shs {
			if !s.Delete(name) {
				t.Fatalf("delete %s missing in sharded store", name)
			}
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 1; i < count; i += 11 {
		if i%7 == 0 {
			continue // deleted above
		}
		name := fmt.Sprintf("W%04d", i)
		vals := make([]float64, length)
		v := 50.0
		for j := range vals {
			v += rng.Float64()*8 - 4
			vals[j] = v
		}
		if _, err := db.Update(name, vals); err != nil {
			t.Fatal(err)
		}
		for _, s := range shs {
			if _, err := s.Update(name, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func queryValues(length int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, length)
	v := 60.0
	for i := range vals {
		v += rng.Float64()*8 - 4
		vals[i] = v
	}
	return vals
}

// checkParity asserts that every Sharded store returns exactly the
// unsharded slice.
func checkParity[T any](t *testing.T, label string, db *DB, shs []*Sharded, run func(Engine) (T, error)) {
	t.Helper()
	want, err := run(db)
	if err != nil {
		t.Fatalf("%s: unsharded: %v", label, err)
	}
	for _, s := range shs {
		got, err := run(s)
		if err != nil {
			t.Fatalf("%s: %d shards: %v", label, s.Shards(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %d shards diverges from unsharded:\n got %+v\nwant %+v", label, s.Shards(), got, want)
		}
	}
}

func TestShardedParityAllQueryKinds(t *testing.T) {
	const (
		count  = 120
		length = 32
	)
	widths := []int{1, 2, 8}
	db, shs := buildParityStores(t, count, length, widths)
	mutateParityStores(t, db, shs, count, length)

	if got, want := shs[1].Len(), db.Len(); got != want {
		t.Fatalf("Len: sharded %d, unsharded %d", got, want)
	}
	if !reflect.DeepEqual(shs[1].IDs(), db.IDs()) {
		t.Fatalf("IDs diverge: sharded %v unsharded %v", shs[1].IDs(), db.IDs())
	}

	id := transform.Identity(length)
	mavg := transform.MovingAverage(length, 5)
	revMavg, _ := transform.Reverse(length).Compose(mavg)
	q := queryValues(length, 7)

	rangeCases := []struct {
		label string
		rq    RangeQuery
	}{
		{"range/identity", RangeQuery{Values: q, Eps: 8, Transform: id}},
		{"range/mavg", RangeQuery{Values: q, Eps: 6, Transform: mavg}},
		{"range/rev-mavg", RangeQuery{Values: q, Eps: 6, Transform: revMavg}},
		{"range/both-sides", RangeQuery{Values: q, Eps: 6, Transform: mavg, BothSides: true}},
		{"range/warp", RangeQuery{Values: queryValues(2*length, 8), Eps: 8, Transform: transform.Warp(length, 2), WarpFactor: 2}},
		{"range/force-transform", RangeQuery{Values: q, Eps: 8, Transform: id, ForceTransform: true}},
	}
	for _, c := range rangeCases {
		rq := c.rq
		checkParity(t, c.label+"/indexed", db, shs, func(e Engine) ([]Result, error) {
			r, _, err := e.RangeIndexed(rq)
			return r, err
		})
		checkParity(t, c.label+"/scanfreq", db, shs, func(e Engine) ([]Result, error) {
			r, _, err := e.RangeScanFreq(rq)
			return r, err
		})
		checkParity(t, c.label+"/scantime", db, shs, func(e Engine) ([]Result, error) {
			r, _, err := e.RangeScanTime(rq)
			return r, err
		})
	}

	nnCases := []struct {
		label string
		nq    NNQuery
	}{
		{"nn/k1", NNQuery{Values: q, K: 1, Transform: id}},
		{"nn/k7", NNQuery{Values: q, K: 7, Transform: id}},
		{"nn/mavg", NNQuery{Values: q, K: 5, Transform: mavg}},
		{"nn/both-sides", NNQuery{Values: q, K: 5, Transform: mavg, BothSides: true}},
		{"nn/warp", NNQuery{Values: queryValues(2*length, 8), K: 4, Transform: transform.Warp(length, 2), WarpFactor: 2}},
		{"nn/k-over-size", NNQuery{Values: q, K: count * 2, Transform: id}},
	}
	for _, c := range nnCases {
		nq := c.nq
		checkParity(t, c.label+"/indexed", db, shs, func(e Engine) ([]Result, error) {
			r, _, err := e.NNIndexed(nq)
			return r, err
		})
		checkParity(t, c.label+"/scan", db, shs, func(e Engine) ([]Result, error) {
			r, _, err := e.NNScan(nq)
			return r, err
		})
	}

	for _, m := range []JoinMethod{JoinScanNaive, JoinScanEarlyAbandon, JoinIndexPlain, JoinIndexTransform} {
		m := m
		checkParity(t, fmt.Sprintf("selfjoin/%s", m), db, shs, func(e Engine) ([]JoinPair, error) {
			p, _, err := e.SelfJoin(3.5, mavg, m)
			return p, err
		})
	}
	checkParity(t, "join-two-sided", db, shs, func(e Engine) ([]JoinPair, error) {
		p, _, err := e.JoinTwoSided(3.0, revMavg, mavg)
		return p, err
	})

	sub := queryValues(length/2, 9)
	checkParity(t, "subsequence", db, shs, func(e Engine) ([]SubseqResult, error) {
		r, _, err := e.SubsequenceScan(sub, 40)
		return r, err
	})
}

// TestShardedParityBulkLoad checks that bulk loading assigns the same
// global IDs as the unsharded bulk load, and queries agree.
func TestShardedParityBulkLoad(t *testing.T) {
	const (
		count  = 90
		length = 32
	)
	data := dataset.RandomWalks(count, length, 5)
	names := make([]string, count)
	values := make([][]float64, count)
	for i, d := range data {
		names[i], values[i] = d.Name, d.Values
	}
	db, err := NewDB(length, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBulk(names, values); err != nil {
		t.Fatal(err)
	}
	var shs []*Sharded
	for _, w := range []int{1, 2, 8} {
		s, err := NewSharded(length, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InsertBulk(names, values); err != nil {
			t.Fatal(err)
		}
		shs = append(shs, s)
	}
	if !reflect.DeepEqual(shs[2].IDs(), db.IDs()) {
		t.Fatalf("bulk-load IDs diverge")
	}
	q := queryValues(length, 3)
	checkParity(t, "bulk/range", db, shs, func(e Engine) ([]Result, error) {
		r, _, err := e.RangeIndexed(RangeQuery{Values: q, Eps: 8, Transform: transform.Identity(length)})
		return r, err
	})
	checkParity(t, "bulk/nn", db, shs, func(e Engine) ([]Result, error) {
		r, _, err := e.NNIndexed(NNQuery{Values: q, K: 5, Transform: transform.Identity(length)})
		return r, err
	})
}

// TestShardedInsertBulkAllOrNothing checks a bad batch loads nothing into
// any shard — no ghost series behind an empty catalog — and a corrected
// retry succeeds.
func TestShardedInsertBulkAllOrNothing(t *testing.T) {
	const length = 32
	s, err := NewSharded(length, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := queryValues(length, 1)
	names := []string{"a", "b", "a"} // duplicate
	values := [][]float64{good, good, good}
	if err := s.InsertBulk(names, values); err == nil {
		t.Fatal("duplicate batch loaded without error")
	}
	if s.Len() != 0 {
		t.Fatalf("failed bulk load left %d series", s.Len())
	}
	res, _, err := s.RangeIndexed(RangeQuery{Values: good, Eps: 100, Transform: transform.Identity(length)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("failed bulk load left ghost series in query results: %+v", res)
	}
	if err := s.InsertBulk([]string{"a", "b"}, [][]float64{good, queryValues(length, 2)}); err != nil {
		t.Fatalf("retry after failed bulk load: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("retry loaded %d series, want 2", s.Len())
	}
}

// TestShardedSnapshotRoundTrip writes a sharded store to the TSQ2 format
// and loads it back at the recorded width, a different width, and as a
// single DB — all must answer identically. A TSQ1 snapshot must load into
// a sharded store the same way.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	const (
		count  = 60
		length = 32
	)
	db, shs := buildParityStores(t, count, length, []int{4})
	src := shs[0]

	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	recorded, err := ReadEngine(bytes.NewReader(snap), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := recorded.(*Sharded); !ok || s.Shards() != 4 {
		t.Fatalf("recorded load: want 4-shard store, got %T", recorded)
	}
	resharded, err := ReadEngine(bytes.NewReader(snap), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ReadEngine(bytes.NewReader(snap), Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := single.(*DB); !ok {
		t.Fatalf("single load: want *DB, got %T", single)
	}

	// Old-format snapshot into a sharded store.
	var v1 bytes.Buffer
	if _, err := db.WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	fromV1, err := ReadEngine(bytes.NewReader(v1.Bytes()), Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	v1Recorded, err := ReadEngine(bytes.NewReader(v1.Bytes()), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v1Recorded.(*DB); !ok {
		t.Fatalf("TSQ1 default load: want *DB, got %T", v1Recorded)
	}

	q := queryValues(length, 11)
	want, _, err := db.RangeIndexed(RangeQuery{Values: q, Eps: 8, Transform: transform.Identity(length)})
	if err != nil {
		t.Fatal(err)
	}
	for label, e := range map[string]Engine{
		"recorded": recorded, "resharded": resharded, "single": single,
		"fromV1": fromV1, "v1Recorded": v1Recorded,
	} {
		got, _, err := e.RangeIndexed(RangeQuery{Values: q, Eps: 8, Transform: transform.Identity(length)})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s snapshot load diverges:\n got %+v\nwant %+v", label, got, want)
		}
	}
}

// TestShardedNNSharedBound checks the fan-out shares the k-th-best bound:
// the total verified candidates across shards must stay well below the
// store size when the index search is selective.
func TestShardedNNSharedBound(t *testing.T) {
	const (
		count  = 400
		length = 64
	)
	data := dataset.RandomWalks(count, length, 21)
	s, err := NewSharded(length, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, count)
	values := make([][]float64, count)
	for i, d := range data {
		names[i], values[i] = d.Name, d.Values
	}
	if err := s.InsertBulk(names, values); err != nil {
		t.Fatal(err)
	}
	vals, err := s.Series(0)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := s.NNIndexed(NNQuery{Values: vals, K: 3, Transform: transform.Identity(length)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("want 3 results, got %d", len(res))
	}
	if res[0].ID != 0 || res[0].Dist > 1e-9 {
		t.Fatalf("self should be nearest, got %+v", res[0])
	}
	if st.Candidates >= count {
		t.Errorf("shared bound ineffective: %d candidates for %d series", st.Candidates, count)
	}
}

// TestShardedConcurrentReadsWrites hammers one sharded store directly
// with concurrent queries and writes; run with -race.
func TestShardedConcurrentReadsWrites(t *testing.T) {
	const (
		count  = 64
		length = 32
		iters  = 60
	)
	data := dataset.RandomWalks(count, length, 13)
	s, err := NewSharded(length, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range data {
		if _, err := s.Insert(d.Name, d.Values); err != nil {
			t.Fatal(err)
		}
	}
	q := queryValues(length, 17)
	id := transform.Identity(length)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					if _, _, err := s.RangeIndexed(RangeQuery{Values: q, Eps: 6, Transform: id}); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := s.NNIndexed(NNQuery{Values: q, K: 3, Transform: id}); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, _, err := s.SelfJoin(2, id, JoinIndexTransform); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, _, err := s.SubsequenceScan(q[:8], 30); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("churn-%d-%d", w, i)
				vals := queryValues(length, int64(100+w*iters+i))
				if _, err := s.Insert(name, vals); err != nil {
					errs <- err
					return
				}
				if i%2 == 0 {
					if !s.Delete(name) {
						errs <- fmt.Errorf("lost %s", name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() == 0 || s.Len() > count+2*iters {
		t.Fatalf("implausible store size %d", s.Len())
	}
}
