package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/rtree"
	"repro/internal/stats"
	"repro/internal/transform"
)

// Sharded is a hash-partitioned store: N independent DB shards, each with
// its own k-index, relations, and read-write lock, partitioned by series
// name (FNV-1a). Queries fan out to every shard in parallel — the paper's
// Algorithm 2 filter runs the same index traversal on each partition and
// exact verification composes by merging — and a merge step aggregates
// ExecStats and re-sorts results under the deterministic (distance, ID)
// order, so a Sharded store returns byte-identical answers to a single DB
// holding the same series. Nearest-neighbor searches share one k-th-best
// bound across all shard traversals, so sharding does not inflate
// candidate counts.
//
// Unlike DB, a Sharded store synchronizes internally: every method is safe
// for concurrent use. Writes take only the owning shard's exclusive lock,
// so a writer to one shard never blocks readers of the others; queries
// take each shard's shared lock for just that shard's portion of the
// fan-out. A query therefore sees each shard at a consistent point in
// time, but two shards may be observed at slightly different moments when
// writes race the query — per-shard consistency, the standard partitioned
// reading.
//
// IDs are global: a catalog maps every ID to its owning shard, and shards
// store series under the globally assigned ID, so merged results need no
// translation and ID-based orderings match the unsharded store exactly.
type Sharded struct {
	length int
	shards []*DB
	locks  []sync.RWMutex // index-aligned with shards

	// tracker feeds merged execution feedback to the query planner (the
	// per-shard DB trackers stay cold: planning happens at this level);
	// history keeps the recent executed plans for est-vs-actual
	// diagnostics.
	tracker *plan.Tracker
	history *plan.History

	// catalog: global ID space. Lock order is shard lock(s) first, then mu.
	mu     sync.RWMutex
	owner  map[int64]int // global id -> shard index
	ids    []int64       // live ids, arbitrary order (swap-delete)
	idPos  map[int64]int // id -> position in ids
	nextID int64
}

// NewSharded creates an empty sharded store of n hash-partitioned shards
// for series of the given length. n must be >= 1; every shard gets the
// same Options.
func NewSharded(length, n int, opts Options) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count %d must be >= 1", n)
	}
	s := &Sharded{
		length:  length,
		shards:  make([]*DB, n),
		locks:   make([]sync.RWMutex, n),
		tracker: plan.NewTracker(),
		history: plan.NewHistory(0),
		owner:   make(map[int64]int),
		idPos:   make(map[int64]int),
	}
	s.tracker.SetCosts(plan.Calibrated())
	for i := range s.shards {
		shOpts := opts
		if opts.Backing != "" {
			// Each shard gets its own backing subdirectory so the shards'
			// scratch page files never collide.
			shOpts.Backing = filepath.Join(opts.Backing, fmt.Sprintf("shard-%03d", i))
		}
		db, err := NewDB(length, shOpts)
		if err != nil {
			for j := 0; j < i; j++ {
				s.shards[j].Close()
			}
			return nil, err
		}
		s.shards[i] = db
	}
	return s, nil
}

// Close releases every shard's backing storage (removing disk scratch
// files). The store must not be used afterwards.
func (s *Sharded) Close() error {
	s.lockAll()
	defer s.unlockAll()
	var err error
	for _, sh := range s.shards {
		if cerr := sh.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// PoolStats reports the combined buffer-pool state across all shards.
func (s *Sharded) PoolStats() PoolStats {
	var out PoolStats
	for si := range s.shards {
		s.locks[si].RLock()
		st := s.shards[si].PoolStats()
		s.locks[si].RUnlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Resident += st.Resident
		out.Pinned += st.Pinned
		out.Capacity += st.Capacity
		out.DiskBacked = out.DiskBacked || st.DiskBacked
	}
	return out
}

// FeatureBounds returns the union of every shard's feature-space MBR.
func (s *Sharded) FeatureBounds() geom.Rect {
	b, _ := s.featureBounds()
	return b
}

// shardFor maps a series name to its owning shard.
func (s *Sharded) shardFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Length returns the fixed series length.
func (s *Sharded) Length() int { return s.length }

// Schema returns the feature schema (identical on every shard).
func (s *Sharded) Schema() feature.Schema { return s.shards[0].Schema() }

// Len returns the number of stored series across all shards.
func (s *Sharded) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ids)
}

// IDs returns the live global IDs in insertion order (ascending — IDs are
// assigned monotonically).
func (s *Sharded) IDs() []int64 {
	s.mu.RLock()
	out := make([]int64, len(s.ids))
	copy(out, s.ids)
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names returns the live series names in insertion order, pinned as one
// consistent snapshot: a delete racing the listing can neither blank an
// entry nor tear the list (per-ID lookups over a changing catalog could).
func (s *Sharded) Names() []string {
	entries := s.pinAll()
	defer s.runlockAll()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.sh.Name(e.id)
	}
	return out
}

// Name returns the name stored under a global ID ("" if absent).
func (s *Sharded) Name(id int64) string {
	s.mu.RLock()
	si, ok := s.owner[id]
	s.mu.RUnlock()
	if !ok {
		return ""
	}
	s.locks[si].RLock()
	defer s.locks[si].RUnlock()
	return s.shards[si].Name(id)
}

// IDByName resolves a series name to its global ID.
func (s *Sharded) IDByName(name string) (int64, bool) {
	si := s.shardFor(name)
	s.locks[si].RLock()
	defer s.locks[si].RUnlock()
	return s.shards[si].IDByName(name)
}

// Series fetches the raw values stored under a global ID.
func (s *Sharded) Series(id int64) ([]float64, error) {
	s.mu.RLock()
	si, ok := s.owner[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: id %d not found", id)
	}
	s.locks[si].RLock()
	defer s.locks[si].RUnlock()
	return s.shards[si].Series(id)
}

// Insert stores a named series in its hash-assigned shard under a fresh
// global ID, taking only that shard's exclusive lock.
func (s *Sharded) Insert(name string, values []float64) (int64, error) {
	si := s.shardFor(name)
	sh := s.shards[si]
	s.locks[si].Lock()
	defer s.locks[si].Unlock()
	if err := sh.validateInsert(name, values); err != nil {
		return 0, err
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()
	if err := sh.insertAt(id, name, values); err != nil {
		// Unreachable after validateInsert for well-formed input (e.g. a
		// non-finite series rejected by feature extraction); the reserved
		// ID stays burned — a gap in the ID space, never a collision.
		return 0, err
	}
	s.mu.Lock()
	s.owner[id] = si
	s.idPos[id] = len(s.ids)
	s.ids = append(s.ids, id)
	s.mu.Unlock()
	return id, nil
}

// InsertBulk loads a batch into an empty sharded store, bulk-loading every
// shard's index in parallel. Global IDs are assigned in batch order, so
// the resulting store is ID-identical to an unsharded InsertBulk of the
// same batch.
func (s *Sharded) InsertBulk(names []string, values [][]float64) error {
	return s.insertBulkPrepared(names, values, nil, nil, nil, nil)
}

// insertBulkPrepared is InsertBulk with optional precomputed derived data
// from a snapshot: feature points, raw encoded series and spectrum
// records (the snapshot's byte layout is the page-file record layout, so
// shards store them verbatim), and per-shard packed trees. points == nil
// runs the full validation + extraction here (the plain InsertBulk path);
// with points the extraction is skipped and only the cheap structural
// checks run. trees, when non-nil, must hold one decoded tree per shard,
// partitioned exactly as this store partitions (same shard count,
// hash-of-name assignment) — each shard then adopts its tree instead of
// STR bulk loading.
func (s *Sharded) insertBulkPrepared(names []string, values [][]float64, rawVals [][]byte, points []geom.Point, specs [][]byte, trees []*rtree.Tree) error {
	if values == nil && (rawVals == nil || points == nil || specs == nil) {
		return fmt.Errorf("core: a raw-only bulk load needs raw records, points, and spectra")
	}
	if values != nil && len(names) != len(values) {
		return fmt.Errorf("core: %d names but %d series", len(names), len(values))
	}
	if rawVals != nil && len(rawVals) != len(names) {
		return fmt.Errorf("core: %d names but %d raw value records", len(names), len(rawVals))
	}
	if trees != nil && len(trees) != len(s.shards) {
		return fmt.Errorf("core: %d packed trees for %d shards", len(trees), len(s.shards))
	}
	s.lockAll()
	defer s.unlockAll()
	if len(s.ids) > 0 || s.nextID != 0 {
		return fmt.Errorf("core: InsertBulk requires a fresh store (have %d live series, %d ever inserted)", len(s.ids), s.nextID)
	}
	// Validate the entire batch — including feature extraction, the only
	// check that can fail on well-formed names — before any shard loads,
	// so a bad series cannot leave sibling shards populated behind an
	// empty catalog (the unsharded InsertBulk is all-or-nothing too). The
	// extracted points ride along to the shard loads, so the dominant
	// bulk-load cost runs once per series. Snapshot loads hand the points
	// in and skip straight to the structural checks.
	extract := points == nil
	if extract {
		points = make([]geom.Point, len(values))
	}
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return fmt.Errorf("core: empty series name at position %d", i)
		}
		if seen[name] {
			return fmt.Errorf("core: duplicate series name %q", name)
		}
		seen[name] = true
		if values != nil && len(values[i]) != s.length {
			return fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values[i]), s.length)
		}
		if rawVals != nil && len(rawVals[i]) != 8*s.length {
			return fmt.Errorf("core: series %q raw record has %d bytes, DB expects %d", name, len(rawVals[i]), 8*s.length)
		}
		if extract {
			p, err := s.Schema().Extract(values[i])
			if err != nil {
				return err
			}
			points[i] = p
		}
	}
	n := len(s.shards)
	partNames := make([][]string, n)
	partValues := make([][][]float64, n)
	partIDs := make([][]int64, n)
	partPoints := make([][]geom.Point, n)
	partSpecs := make([][][]byte, n)
	partRaw := make([][][]byte, n)
	for i, name := range names {
		si := s.shardFor(name)
		partNames[si] = append(partNames[si], name)
		if values != nil {
			partValues[si] = append(partValues[si], values[i])
		}
		partIDs[si] = append(partIDs[si], int64(i))
		partPoints[si] = append(partPoints[si], points[i])
		if specs != nil {
			partSpecs[si] = append(partSpecs[si], specs[i])
		}
		if rawVals != nil {
			partRaw[si] = append(partRaw[si], rawVals[i])
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sh := s.shards[si]
			sp := partSpecs[si]
			if specs == nil {
				sp = nil
			}
			rv := partRaw[si]
			if rawVals == nil {
				rv = nil
			}
			if trees != nil {
				errs[si] = sh.adoptBulk(partNames[si], partValues[si], partIDs[si], partPoints[si], rv, sp, trees[si])
			} else {
				errs[si] = sh.loadBulk(partNames[si], partValues[si], partIDs[si], partPoints[si], rv, sp, nil)
			}
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	for i := range names {
		id := int64(i)
		s.owner[id] = s.shardFor(names[i])
		s.idPos[id] = len(s.ids)
		s.ids = append(s.ids, id)
	}
	s.nextID = int64(len(names))
	s.mu.Unlock()
	return nil
}

// Update replaces the values stored under an existing name, reindexing the
// series in its shard under a fresh global ID (Delete + Insert semantics,
// matching DB.Update).
func (s *Sharded) Update(name string, values []float64) (int64, error) {
	si := s.shardFor(name)
	sh := s.shards[si]
	s.locks[si].Lock()
	defer s.locks[si].Unlock()
	oldID, ok := sh.IDByName(name)
	if !ok {
		return 0, fmt.Errorf("core: unknown series %q", name)
	}
	if len(values) != s.length {
		return 0, fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values), s.length)
	}
	if _, err := sh.Schema().Extract(values); err != nil {
		return 0, err
	}
	sh.Delete(name)
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.removeCatalogLocked(oldID)
	s.mu.Unlock()
	if err := sh.insertAt(id, name, values); err != nil {
		return 0, err // unreachable after validation
	}
	s.mu.Lock()
	s.owner[id] = si
	s.idPos[id] = len(s.ids)
	s.ids = append(s.ids, id)
	s.mu.Unlock()
	return id, nil
}

// Delete removes a series by name, taking only its shard's exclusive
// lock. It reports whether the name was present.
func (s *Sharded) Delete(name string) bool {
	si := s.shardFor(name)
	sh := s.shards[si]
	s.locks[si].Lock()
	defer s.locks[si].Unlock()
	id, ok := sh.IDByName(name)
	if !ok {
		return false
	}
	sh.Delete(name)
	s.mu.Lock()
	s.removeCatalogLocked(id)
	s.mu.Unlock()
	return true
}

// removeCatalogLocked drops a global ID from the catalog (caller holds
// s.mu).
func (s *Sharded) removeCatalogLocked(id int64) {
	delete(s.owner, id)
	if pos, ok := s.idPos[id]; ok {
		last := len(s.ids) - 1
		moved := s.ids[last]
		s.ids[pos] = moved
		s.idPos[moved] = pos
		s.ids = s.ids[:last]
		delete(s.idPos, id)
	}
}

// Compact rebuilds every shard's storage pages and repacks its index,
// returning the total pages reclaimed. Shards compact one at a time under
// their own exclusive locks — never the whole store at once — so queries
// against the other shards proceed while one shard rebuilds (the
// background-maintenance pattern: a compaction pass stalls at most 1/N of
// the store at any moment).
func (s *Sharded) Compact() (int, error) {
	total := 0
	for si := range s.shards {
		s.locks[si].Lock()
		n, err := s.shards[si].Compact()
		s.locks[si].Unlock()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// lockAll / unlockAll take every shard's exclusive lock in ascending
// order (the global lock order, so whole-store operations cannot deadlock
// against per-shard writers).
func (s *Sharded) lockAll() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.locks) - 1; i >= 0; i-- {
		s.locks[i].Unlock()
	}
}

// rlockAll / runlockAll are the shared-mode counterparts, used by
// cross-shard reads (joins, snapshots) that need every shard pinned at
// once.
func (s *Sharded) rlockAll() {
	for i := range s.locks {
		s.locks[i].RLock()
	}
}

func (s *Sharded) runlockAll() {
	for i := len(s.locks) - 1; i >= 0; i-- {
		s.locks[i].RUnlock()
	}
}

// fanOut runs fn for every shard under that shard's shared lock — shard 0
// on the calling goroutine, the rest concurrently — returning the
// lowest-indexed error. Running one partition inline keeps the
// single-shard configuration goroutine-free and saves one spawn/wakeup
// per query otherwise.
func (s *Sharded) fanOut(fn func(si int, sh *DB) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.locks[i].RLock()
			defer s.locks[i].RUnlock()
			errs[i] = fn(i, s.shards[i])
		}(i)
	}
	s.locks[0].RLock()
	errs[0] = fn(0, s.shards[0])
	s.locks[0].RUnlock()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeStats folds per-shard execution costs into one ExecStats. Elapsed
// is deliberately left to the caller's wall clock — summing per-shard
// elapsed times would double-count parallel work.
func mergeStats(parts []ExecStats) ExecStats {
	var st ExecStats
	for _, p := range parts {
		st.NodeAccesses += p.NodeAccesses
		st.PageReads += p.PageReads
		st.Candidates += p.Candidates
		st.DistanceTerms += p.DistanceTerms
		st.EarlyAccepts += p.EarlyAccepts
		st.BoundTightSum += p.BoundTightSum
		if p.Delta > st.Delta {
			st.Delta = p.Delta
		}
		if p.Rung > st.Rung {
			st.Rung = p.Rung
		}
	}
	return st
}

// shardProvenance folds per-shard costs and result counts into the merged
// stats' provenance — what EXPLAIN's per-shard breakdown and the server's
// dependency-tagged cache consume.
func shardProvenance(sts []ExecStats, results []int) []ShardExec {
	out := make([]ShardExec, len(sts))
	for si := range sts {
		out[si] = ShardExec{
			Shard:        si,
			NodeAccesses: sts[si].NodeAccesses,
			PageReads:    sts[si].PageReads,
			Candidates:   sts[si].Candidates,
			Elapsed:      sts[si].Elapsed,
		}
		if results != nil {
			out[si].Results = results[si]
		}
	}
	return out
}

// rangeFanPlanned plans a range-shaped query once — the plan depends only
// on the schema and length, which every shard shares — and fans the
// planned execution out to every shard, merging answers and costs.
func (s *Sharded) rangeFanPlanned(q RangeQuery, run func(*DB, *rangePlan, *ExecStats) ([]Result, error)) ([]Result, ExecStats, error) {
	p, err := s.shards[0].planRange(q)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return s.rangeFanWith(p, run)
}

// rangeFanWith fans a preplanned range-shaped execution out to every
// shard, merging answers, costs, and per-shard provenance.
func (s *Sharded) rangeFanWith(p *rangePlan, run func(*DB, *rangePlan, *ExecStats) ([]Result, error)) ([]Result, ExecStats, error) {
	timer := stats.StartTimer()
	parts := make([][]Result, len(s.shards))
	sts := make([]ExecStats, len(s.shards))
	if err := s.fanOut(func(si int, sh *DB) error {
		shTimer := stats.StartTimer()
		reads0 := sh.pageReads()
		r, err := run(sh, p, &sts[si])
		sts[si].PageReads = sh.pageReads() - reads0
		sts[si].Elapsed = shTimer.Elapsed()
		parts[si] = r
		return err
	}); err != nil {
		return nil, ExecStats{}, err
	}
	fanD := timer.Elapsed()
	mergeT := stats.StartTimer()
	var out []Result
	counts := make([]int, len(parts))
	for si, part := range parts {
		counts[si] = len(part)
		out = append(out, part...)
	}
	sortResults(out)
	st := mergeStats(sts)
	st.Results = len(out)
	st.Shards = shardProvenance(sts, counts)
	st.Spans = fanSpans(fanD, mergeT.Elapsed(), st.Shards)
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// RangeIndexed answers a range query with Algorithm 2 on every shard in
// parallel, merging verified answers.
func (s *Sharded) RangeIndexed(q RangeQuery) ([]Result, ExecStats, error) {
	return s.rangeFanPlanned(q, (*DB).rangeIndexedPlanned)
}

// RangeScanFreq runs the frequency-domain scan baseline on every shard in
// parallel.
func (s *Sharded) RangeScanFreq(q RangeQuery) ([]Result, ExecStats, error) {
	return s.rangeFanPlanned(q, (*DB).rangeScanFreqPlanned)
}

// RangeScanTime runs the naive time-domain scan baseline on every shard
// in parallel (the baseline carries no reusable plan — it transforms in
// the time domain per record).
func (s *Sharded) RangeScanTime(q RangeQuery) ([]Result, ExecStats, error) {
	timer := stats.StartTimer()
	parts := make([][]Result, len(s.shards))
	sts := make([]ExecStats, len(s.shards))
	if err := s.fanOut(func(si int, sh *DB) error {
		r, pst, err := sh.RangeScanTime(q)
		parts[si], sts[si] = r, pst
		return err
	}); err != nil {
		return nil, ExecStats{}, err
	}
	fanD := timer.Elapsed()
	mergeT := stats.StartTimer()
	var out []Result
	counts := make([]int, len(parts))
	for si, part := range parts {
		counts[si] = len(part)
		out = append(out, part...)
	}
	sortResults(out)
	st := mergeStats(sts)
	st.Results = len(out)
	st.Shards = shardProvenance(sts, counts)
	st.Spans = fanSpans(fanD, mergeT.Elapsed(), st.Shards)
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// nnFan fans a nearest-neighbor search out to every shard with one shared
// k-th-best bound: every shard traversal verifies against — and tightens —
// the same global threshold, the cross-shard analogue of
// SelfJoinScanParallel's worker partitioning, so the union of shard
// searches verifies no more candidates than a single-store search would
// (up to bound-propagation timing).
func (s *Sharded) nnFan(q NNQuery, run func(*DB, *rangePlan, *topK, *ExecStats) error) ([]Result, ExecStats, error) {
	p, err := planNN(s.shards[0], q)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return s.nnFanWith(q.K, p, run)
}

// nnFanWith fans a preplanned nearest-neighbor search out to every shard.
// The merged answer's per-shard provenance attributes each neighbor to its
// owning shard through the catalog.
func (s *Sharded) nnFanWith(k int, p *rangePlan, run func(*DB, *rangePlan, *topK, *ExecStats) error) ([]Result, ExecStats, error) {
	timer := stats.StartTimer()
	best := newTopK(k)
	sts := make([]ExecStats, len(s.shards))
	if err := s.fanOut(func(si int, sh *DB) error {
		shTimer := stats.StartTimer()
		reads0 := sh.pageReads()
		err := run(sh, p, best, &sts[si])
		sts[si].PageReads = sh.pageReads() - reads0
		sts[si].Elapsed = shTimer.Elapsed()
		return err
	}); err != nil {
		return nil, ExecStats{}, err
	}
	fanD := timer.Elapsed()
	mergeT := stats.StartTimer()
	out := best.results()
	counts := make([]int, len(s.shards))
	s.mu.RLock()
	for _, r := range out {
		if si, ok := s.owner[r.ID]; ok {
			counts[si]++
		}
	}
	s.mu.RUnlock()
	st := mergeStats(sts)
	st.Results = len(out)
	st.Shards = shardProvenance(sts, counts)
	st.Spans = fanSpans(fanD, mergeT.Elapsed(), st.Shards)
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// NNIndexed answers a k-nearest-neighbor query with the branch-and-bound
// traversal on every shard in parallel, sharing the k-th-best bound.
func (s *Sharded) NNIndexed(q NNQuery) ([]Result, ExecStats, error) {
	return s.nnFan(q, (*DB).nnIndexedInto)
}

// NNScan runs the scan baseline on every shard in parallel, sharing the
// k-th-best bound.
func (s *Sharded) NNScan(q NNQuery) ([]Result, ExecStats, error) {
	return s.nnFan(q, (*DB).nnScanInto)
}

// SubsequenceScan runs the time-domain subsequence scan on every shard in
// parallel.
func (s *Sharded) SubsequenceScan(q []float64, eps float64) ([]SubseqResult, ExecStats, error) {
	timer := stats.StartTimer()
	parts := make([][]SubseqResult, len(s.shards))
	sts := make([]ExecStats, len(s.shards))
	if err := s.fanOut(func(si int, sh *DB) error {
		r, pst, err := sh.SubsequenceScan(q, eps)
		parts[si], sts[si] = r, pst
		return err
	}); err != nil {
		return nil, ExecStats{}, err
	}
	fanD := timer.Elapsed()
	mergeT := stats.StartTimer()
	var out []SubseqResult
	counts := make([]int, len(parts))
	for si, p := range parts {
		counts[si] = len(p)
		out = append(out, p...)
	}
	sortSubseq(out)
	st := mergeStats(sts)
	st.Results = len(out)
	st.Shards = shardProvenance(sts, counts)
	st.Spans = fanSpans(fanD, mergeT.Elapsed(), st.Shards)
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// entry is one live series pinned for a cross-shard join: its global ID,
// owning shard index, and that shard's store.
type entry struct {
	id int64
	si int
	sh *DB
}

// pinAll takes every shard's shared lock and snapshots the catalog in
// ascending global-ID (insertion) order. The caller must runlockAll when
// done.
func (s *Sharded) pinAll() []entry {
	s.rlockAll()
	s.mu.RLock()
	out := make([]entry, 0, len(s.ids))
	for _, id := range s.ids {
		si := s.owner[id]
		out = append(out, entry{id: id, si: si, sh: s.shards[si]})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// SelfJoin finds all pairs of distinct stored series within eps under the
// given Table 1 method, across all shards: scan methods run one global
// nested scan partitioned across workers; index methods probe every
// shard's index with every stored series in parallel. Output matches the
// unsharded SelfJoin exactly (same pairs, same (A, B) order, same
// once/twice reporting per method). For cost-based method selection use
// PlanJoin/ExecJoin instead.
func (s *Sharded) SelfJoin(eps float64, t transform.T, method JoinMethod) ([]JoinPair, ExecStats, error) {
	var (
		q    JoinQuery
		scan bool
		ea   bool
	)
	switch method {
	case JoinScanNaive:
		q, scan = selfJoinQuery(eps, t), true
	case JoinScanEarlyAbandon:
		q, scan, ea = selfJoinQuery(eps, t), true, true
	case JoinIndexPlain:
		q = selfJoinQuery(eps, transform.Identity(s.length))
	case JoinIndexTransform:
		q = selfJoinQuery(eps, t)
	default:
		return nil, ExecStats{}, fmt.Errorf("core: unknown join method %d", method)
	}
	jp, err := s.shards[0].planJoin(q)
	if err != nil {
		return nil, ExecStats{}, err
	}
	if scan {
		return s.joinScanFan(jp, ea)
	}
	if jp.mapErr != nil {
		return nil, ExecStats{}, jp.mapErr
	}
	return s.joinIndexFan(jp, false)
}

// JoinTwoSided finds all ordered pairs (x, y), x != y, with
// D(L(nf(x)), R(nf(y))) <= eps across all shards.
func (s *Sharded) JoinTwoSided(eps float64, left, right transform.T) ([]JoinPair, ExecStats, error) {
	jp, err := s.shards[0].planJoin(JoinQuery{Eps: eps, Left: left, Right: right, TwoSided: true})
	if err != nil {
		return nil, ExecStats{}, err
	}
	if jp.mapErr != nil {
		return nil, ExecStats{}, jp.mapErr
	}
	return s.joinIndexFan(jp, false)
}

// joinScanFan is the global nested scan (methods a and b): outer rows are
// strided across workers like SelfJoinScanParallel, but rows come from
// every shard. All shard locks are held in shared mode for the duration.
// Costs and results are attributed to the outer row's owning shard in the
// merged per-shard provenance.
func (s *Sharded) joinScanFan(jp *joinPlan, earlyAbandon bool) ([]JoinPair, ExecStats, error) {
	timer := stats.StartTimer()
	entries := s.pinAll()
	defer s.runlockAll()
	reads0 := s.pageReadsLocked()

	limit := jp.q.Eps * jp.q.Eps
	n := len(entries)
	workers := runtime.GOMAXPROCS(0)
	if workers > n && n > 0 {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	type partial struct {
		pairs      []JoinPair
		terms      int64
		candidates []int // by outer row's shard
		results    []int
		err        error
	}
	results := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &results[w]
			out.candidates = make([]int, len(s.shards))
			out.results = make([]int, len(s.shards))
			for i := w; i < n; i += workers {
				X, err := entries[i].sh.spectrum(entries[i].id)
				if err != nil {
					out.err = err
					return
				}
				lx := make([]complex128, len(X))
				for f := range X {
					lx[f] = jp.la[f]*X[f] + jp.lb[f]
				}
				var rx []complex128
				if jp.q.TwoSided {
					rx = make([]complex128, len(X))
					for f := range X {
						rx[f] = jp.ra[f]*X[f] + jp.rb[f]
					}
				}
				si := entries[i].si
				for j := i + 1; j < n; j++ {
					view, err := entries[j].sh.specViewOf(entries[j].id)
					if err != nil {
						out.err = err
						return
					}
					if !jp.q.TwoSided {
						out.candidates[si]++
						sum, terms, ok := scanPairDist(lx, jp.la, jp.lb, view, limit, earlyAbandon)
						out.terms += int64(terms)
						if ok && sum <= limit {
							out.pairs = append(out.pairs, orderedPair(entries[i].id, entries[j].id, math.Sqrt(sum)))
							out.results[si]++
						}
						entries[j].sh.releaseSpecView(entries[j].id, view)
						continue
					}
					out.candidates[si]++
					sum, terms, ok := scanPairDist(lx, jp.ra, jp.rb, view, limit, earlyAbandon)
					out.terms += int64(terms)
					if ok && sum <= limit {
						out.pairs = append(out.pairs, JoinPair{A: entries[i].id, B: entries[j].id, Dist: math.Sqrt(sum)})
						out.results[si]++
					}
					out.candidates[si]++
					sum, terms, ok = scanPairDist(rx, jp.la, jp.lb, view, limit, earlyAbandon)
					out.terms += int64(terms)
					if ok && sum <= limit {
						out.pairs = append(out.pairs, JoinPair{A: entries[j].id, B: entries[i].id, Dist: math.Sqrt(sum)})
						out.results[si]++
					}
					entries[j].sh.releaseSpecView(entries[j].id, view)
				}
			}
		}(w)
	}
	wg.Wait()
	scanD := timer.Elapsed()
	mergeT := stats.StartTimer()

	var st ExecStats
	var out []JoinPair
	st.Shards = make([]ShardExec, len(s.shards))
	for si := range st.Shards {
		st.Shards[si].Shard = si
	}
	for _, r := range results {
		if r.err != nil {
			return nil, st, fmt.Errorf("core: sharded join worker: %w", r.err)
		}
		out = append(out, r.pairs...)
		st.DistanceTerms += r.terms
		for si := range r.candidates {
			st.Candidates += r.candidates[si]
			st.Shards[si].Candidates += r.candidates[si]
			st.Shards[si].Results += r.results[si]
		}
	}
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = s.pageReadsLocked() - reads0
	st.Spans = []Span{span("scan", scanD), span("merge", mergeT.Elapsed())}
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// joinIndexFan is the index-nested-loop join over a sharded store
// (self-join methods c/d, the two-sided join, and planned index joins):
// every stored series, in parallel batches partitioned by its owning
// shard, probes every shard's index with the right-side transformation
// applied to its point, and candidates verify in their owning shard
// against the left-side transformation. jp.q.TwoSided selects
// JoinTwoSided's (candidate, probe) pair orientation; otherwise pairs are
// (probe, candidate) as in selfJoinIndex. selfOnce emits each unordered
// pair exactly once (from its lower-ID probe), the planned self join's
// canonical accounting.
func (s *Sharded) joinIndexFan(jp *joinPlan, selfOnce bool) ([]JoinPair, ExecStats, error) {
	timer := stats.StartTimer()
	s.rlockAll()
	defer s.runlockAll()
	reads0 := s.pageReadsLocked()

	type partial struct {
		pairs        []JoinPair
		nodeAccesses int
		candidates   int
		terms        int64
		elapsed      time.Duration
		err          error
	}
	results := make([]partial, len(s.shards))
	var wg sync.WaitGroup
	for pi := range s.shards {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			shTimer := stats.StartTimer()
			out := &results[pi]
			defer func() { out.elapsed = shTimer.Elapsed() }()
			probe := s.shards[pi]
			for _, qid := range probe.ids {
				qp := probe.points[qid]
				tq := qp
				if !jp.rm.Identity() {
					tq = jp.rm.ApplyPoint(qp)
				}
				QX, err := probe.spectrum(qid)
				if err != nil {
					out.err = err
					return
				}
				tQ := make([]complex128, len(QX))
				for f := range QX {
					tQ[f] = jp.ra[f]*QX[f] + jp.rb[f]
				}
				for _, target := range s.shards {
					cands, searchStats := target.idx.Range(tq, jp.q.Eps, jp.lm, feature.MomentBounds{}, !target.opts.DisablePartialPrune)
					out.nodeAccesses += searchStats.NodesVisited
					for _, c := range cands {
						if c.ID == qid {
							continue
						}
						if selfOnce && c.ID < qid {
							continue
						}
						out.candidates++
						within, dist, terms, err := target.viewTransformedWithin(c.ID, jp.la, jp.lb, tQ, jp.q.Eps)
						if err != nil {
							out.err = err
							return
						}
						out.terms += int64(terms)
						if within {
							if jp.q.TwoSided {
								out.pairs = append(out.pairs, JoinPair{A: c.ID, B: qid, Dist: dist})
							} else {
								out.pairs = append(out.pairs, JoinPair{A: qid, B: c.ID, Dist: dist})
							}
						}
					}
				}
			}
		}(pi)
	}
	wg.Wait()
	fanD := timer.Elapsed()
	mergeT := stats.StartTimer()

	var st ExecStats
	var out []JoinPair
	st.Shards = make([]ShardExec, len(results))
	for pi, r := range results {
		if r.err != nil {
			return nil, ExecStats{}, fmt.Errorf("core: sharded join worker: %w", r.err)
		}
		out = append(out, r.pairs...)
		st.NodeAccesses += r.nodeAccesses
		st.Candidates += r.candidates
		st.DistanceTerms += r.terms
		st.Shards[pi] = ShardExec{
			Shard:        pi,
			NodeAccesses: r.nodeAccesses,
			Candidates:   r.candidates,
			Results:      len(r.pairs),
			Elapsed:      r.elapsed,
		}
	}
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = s.pageReadsLocked() - reads0
	st.Spans = fanSpans(fanD, mergeT.Elapsed(), st.Shards)
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// pageReadsLocked sums relation read counters across shards (caller holds
// all shard locks in at least shared mode).
func (s *Sharded) pageReadsLocked() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.pageReads()
	}
	return total
}
