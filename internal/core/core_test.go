package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dft"
	"repro/internal/feature"
	"repro/internal/rtree"
	"repro/internal/series"
	"repro/internal/transform"
)

const testLen = 64

// newTestDB builds a DB over synthetic walks plus planted near-duplicates.
func newTestDB(t *testing.T, n int, seed int64, opts Options) (*DB, [][]float64) {
	t.Helper()
	db, err := NewDB(testLen, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		if i >= n/2 && i < n/2+n/10 {
			// Near-duplicates of early series so small-eps queries have
			// answers.
			src := data[i-n/2]
			dup := make([]float64, testLen)
			for j := range dup {
				dup[j] = src[j] + r.NormFloat64()*0.3
			}
			data[i] = dup
		} else {
			data[i] = dataset.RandomWalk(r, testLen)
		}
		if _, err := db.Insert(name(i), data[i]); err != nil {
			t.Fatal(err)
		}
	}
	return db, data
}

func name(i int) string {
	return "S" + string(rune('A'+i/26/26%26)) + string(rune('A'+i/26%26)) + string(rune('A'+i%26))
}

// bruteRange is the oracle: exact transformed normal-form distances.
func bruteRange(data [][]float64, q []float64, eps float64, tr transform.T, warp int) map[int]float64 {
	out := map[int]float64{}
	qn := series.NormalForm(q)
	for i, x := range data {
		var d float64
		if warp >= 2 {
			d = series.EuclideanDistance(series.Warp(series.NormalForm(x), warp), qn)
		} else {
			X := dft.TransformReal(series.NormalForm(x))
			Q := dft.TransformReal(qn)
			d = dft.Distance(tr.Apply(X), Q)
		}
		if d <= eps {
			out[i] = d
		}
	}
	return out
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB(2, Options{}); err == nil {
		t.Error("tiny length should fail")
	}
	if _, err := NewDB(3, Options{Schema: feature.Schema{Space: feature.Polar, K: 5, Moments: true}}); err == nil {
		t.Error("K too large for length should fail")
	}
	if _, err := NewDB(64, Options{RTree: rtree.Options{MaxEntries: 2}}); err == nil {
		t.Error("bad rtree options should fail")
	}
	if _, err := NewDB(64, Options{Schema: feature.Schema{Space: feature.Space(7), K: 2}}); err == nil {
		t.Error("bad schema should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	db, _ := NewDB(testLen, Options{})
	if _, err := db.Insert("", make([]float64, testLen)); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := db.Insert("a", make([]float64, 5)); err == nil {
		t.Error("wrong length should fail")
	}
	vals := make([]float64, testLen)
	for i := range vals {
		vals[i] = float64(i)
	}
	if _, err := db.Insert("a", vals); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("a", vals); err == nil {
		t.Error("duplicate name should fail")
	}
	if db.Len() != 1 || db.Length() != testLen {
		t.Fatal("accessors wrong")
	}
	id, ok := db.IDByName("a")
	if !ok || db.Name(id) != "a" {
		t.Fatal("name lookup broken")
	}
	if _, ok := db.FeaturePoint(id); !ok {
		t.Fatal("feature point missing")
	}
	got, err := db.Series(id)
	if err != nil || got[3] != 3 {
		t.Fatal("Series fetch broken")
	}
}

func TestRangeValidation(t *testing.T) {
	db, _ := newTestDB(t, 20, 1, Options{})
	q := make([]float64, testLen)
	if _, _, err := db.RangeIndexed(RangeQuery{Values: q, Eps: -1, Transform: transform.Identity(testLen)}); err == nil {
		t.Error("negative eps should fail")
	}
	if _, _, err := db.RangeIndexed(RangeQuery{Values: q, Eps: 1, Transform: transform.Identity(10)}); err == nil {
		t.Error("wrong transform length should fail")
	}
	if _, _, err := db.RangeIndexed(RangeQuery{Values: q[:10], Eps: 1, Transform: transform.Identity(testLen)}); err == nil {
		t.Error("wrong query length should fail")
	}
	if _, _, err := db.RangeIndexed(RangeQuery{Values: q, Eps: 1, Transform: transform.Identity(testLen), WarpFactor: 2}); err == nil {
		t.Error("warp query with unwarped length should fail")
	}
}

func TestRangeAllMethodsAgreeWithOracle(t *testing.T) {
	db, data := newTestDB(t, 150, 2, Options{})
	r := rand.New(rand.NewSource(3))
	transforms := []transform.T{
		transform.Identity(testLen),
		transform.MovingAverage(testLen, 5),
		transform.MovingAverage(testLen, 20),
		transform.Reverse(testLen),
	}
	for trial := 0; trial < 6; trial++ {
		qi := r.Intn(len(data))
		q := data[qi]
		for _, tr := range transforms {
			for _, eps := range []float64{0.5, 2.0, 8.0} {
				rq := RangeQuery{Values: q, Eps: eps, Transform: tr}
				want := bruteRange(data, q, eps, tr, 0)

				idxRes, idxSt, err := db.RangeIndexed(rq)
				if err != nil {
					t.Fatal(err)
				}
				scanRes, _, err := db.RangeScanFreq(rq)
				if err != nil {
					t.Fatal(err)
				}
				timeRes, _, err := db.RangeScanTime(rq)
				if err != nil {
					t.Fatal(err)
				}
				for label, res := range map[string][]Result{"indexed": idxRes, "scanFreq": scanRes, "scanTime": timeRes} {
					if len(res) != len(want) {
						t.Fatalf("%s %s eps=%g: %d results, oracle %d", label, tr, eps, len(res), len(want))
					}
					for _, rr := range res {
						wd, ok := want[int(rr.ID)]
						if !ok {
							t.Fatalf("%s %s: unexpected result %d", label, tr, rr.ID)
						}
						if math.Abs(rr.Dist-wd) > 1e-6 {
							t.Fatalf("%s %s: distance %v != oracle %v", label, tr, rr.Dist, wd)
						}
					}
				}
				if idxSt.NodeAccesses == 0 {
					t.Fatal("indexed query reported zero node accesses")
				}
				// Results sorted by distance.
				for i := 1; i < len(idxRes); i++ {
					if idxRes[i].Dist < idxRes[i-1].Dist {
						t.Fatal("results not sorted")
					}
				}
			}
		}
	}
}

func TestRangeIndexedPrunesVersusScan(t *testing.T) {
	// The index should verify far fewer candidates than the scan at tight
	// thresholds.
	db, data := newTestDB(t, 300, 4, Options{})
	q := data[0]
	rq := RangeQuery{Values: q, Eps: 0.8, Transform: transform.Identity(testLen)}
	_, idxSt, err := db.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	_, scanSt, err := db.RangeScanFreq(rq)
	if err != nil {
		t.Fatal(err)
	}
	if idxSt.Candidates >= scanSt.Candidates/2 {
		t.Fatalf("index verified %d candidates, scan %d — filtering looks broken", idxSt.Candidates, scanSt.Candidates)
	}
	if idxSt.PageReads >= scanSt.PageReads {
		t.Fatalf("index read %d pages, scan %d", idxSt.PageReads, scanSt.PageReads)
	}
}

func TestRangeWithWarp(t *testing.T) {
	// Store half-rate series; query with full-rate versions warped by 2.
	db, err := NewDB(testLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	stored := make([][]float64, 60)
	for i := range stored {
		stored[i] = dataset.RandomWalk(r, testLen)
		if _, err := db.Insert(name(i), stored[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The query is stored[7] warped by 2 with tiny noise.
	q := series.Warp(stored[7], 2)
	for i := range q {
		q[i] += r.NormFloat64() * 0.05
	}
	rq := RangeQuery{
		Values:     q,
		Eps:        0.5,
		Transform:  transform.Warp(testLen, 2),
		WarpFactor: 2,
	}
	res, st, err := db.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rr := range res {
		if rr.ID == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("warped query missed the planted series; got %v", res)
	}
	want := bruteRange(stored, q, rq.Eps, rq.Transform, 2)
	if len(res) != len(want) {
		t.Fatalf("warp: %d results, oracle %d", len(res), len(want))
	}
	if st.Candidates == db.Len() {
		t.Fatal("warp query did not filter at all")
	}
	// Scan agrees.
	scanRes, _, err := db.RangeScanFreq(rq)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanRes) != len(want) {
		t.Fatalf("warp scan: %d results, oracle %d", len(scanRes), len(want))
	}
}

func TestRangeMomentBounds(t *testing.T) {
	db, data := newTestDB(t, 100, 6, Options{})
	q := data[0]
	mean := series.Mean(data[0])
	rq := RangeQuery{
		Values:    q,
		Eps:       1000,
		Transform: transform.Identity(testLen),
		Moments: feature.MomentBounds{
			MeanLo: mean - 0.001, MeanHi: mean + 0.001,
			StdLo: -math.MaxFloat64, StdHi: math.MaxFloat64,
		},
	}
	res, _, err := db.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res {
		m := series.Mean(data[rr.ID])
		if math.Abs(m-mean) > 0.001 {
			t.Fatalf("moment-bounded query returned series with mean %v", m)
		}
	}
	if len(res) == 0 {
		t.Fatal("query series itself should match its own moment bounds")
	}
}

func TestNNAgreesWithBruteForce(t *testing.T) {
	db, data := newTestDB(t, 200, 7, Options{})
	r := rand.New(rand.NewSource(8))
	transforms := []transform.T{
		transform.Identity(testLen),
		transform.MovingAverage(testLen, 10),
	}
	for trial := 0; trial < 4; trial++ {
		q := dataset.RandomWalk(r, testLen)
		for _, tr := range transforms {
			for _, k := range []int{1, 5, 12} {
				nq := NNQuery{Values: q, K: k, Transform: tr}
				idxRes, idxSt, err := db.NNIndexed(nq)
				if err != nil {
					t.Fatal(err)
				}
				scanRes, _, err := db.NNScan(nq)
				if err != nil {
					t.Fatal(err)
				}
				// Oracle.
				type od struct {
					id int
					d  float64
				}
				all := make([]od, len(data))
				for i, x := range data {
					X := dft.TransformReal(series.NormalForm(x))
					Q := dft.TransformReal(series.NormalForm(q))
					all[i] = od{i, dft.Distance(tr.Apply(X), Q)}
				}
				sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
				if len(idxRes) != k || len(scanRes) != k {
					t.Fatalf("k=%d: got %d / %d results", k, len(idxRes), len(scanRes))
				}
				for i := 0; i < k; i++ {
					if math.Abs(idxRes[i].Dist-all[i].d) > 1e-6 {
						t.Fatalf("%s k=%d rank %d: indexed %v != oracle %v", tr, k, i, idxRes[i].Dist, all[i].d)
					}
					if math.Abs(scanRes[i].Dist-all[i].d) > 1e-6 {
						t.Fatalf("%s k=%d rank %d: scan %v != oracle %v", tr, k, i, scanRes[i].Dist, all[i].d)
					}
				}
				if idxSt.Candidates >= len(data) {
					t.Fatalf("NN verified every record (%d) — no pruning", idxSt.Candidates)
				}
			}
		}
	}
}

func TestNNValidation(t *testing.T) {
	db, _ := newTestDB(t, 20, 9, Options{})
	q := make([]float64, testLen)
	if _, _, err := db.NNIndexed(NNQuery{Values: q, K: 0, Transform: transform.Identity(testLen)}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, _, err := db.NNScan(NNQuery{Values: q, K: 0, Transform: transform.Identity(testLen)}); err == nil {
		t.Error("scan K=0 should fail")
	}
	if _, _, err := db.NNIndexed(NNQuery{Values: q[:3], K: 1, Transform: transform.Identity(testLen)}); err == nil {
		t.Error("bad length should fail")
	}
}

func TestNNMoreThanStored(t *testing.T) {
	db, _ := newTestDB(t, 10, 10, Options{})
	q := make([]float64, testLen)
	for i := range q {
		q[i] = float64(i)
	}
	res, _, err := db.NNIndexed(NNQuery{Values: q, K: 50, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("K beyond size returned %d", len(res))
	}
}

func TestSelfJoinMethodsTable1Semantics(t *testing.T) {
	// Build a miniature Table 1 ensemble: planted raw pairs and smooth-only
	// pairs, then check the answer-set relationships the paper reports:
	// a == b (each unordered pair once), d == 2*a (each pair twice),
	// c finds only the raw pairs (twice). Length 128 as in the paper — a
	// 20-day window over much shorter series over-smooths and creates
	// accidental pairs.
	const joinLen = 128
	ens, err := dataset.StockLike(80, joinLen, 11, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(joinLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ens.Series {
		if _, err := db.Insert(s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	tr := transform.MovingAverage(joinLen, 20)
	eps := ens.Epsilon

	resA, stA, err := db.SelfJoin(eps, tr, JoinScanNaive)
	if err != nil {
		t.Fatal(err)
	}
	resB, stB, err := db.SelfJoin(eps, tr, JoinScanEarlyAbandon)
	if err != nil {
		t.Fatal(err)
	}
	resC, _, err := db.SelfJoin(eps, tr, JoinIndexPlain)
	if err != nil {
		t.Fatal(err)
	}
	resD, _, err := db.SelfJoin(eps, tr, JoinIndexTransform)
	if err != nil {
		t.Fatal(err)
	}

	wantPairs := len(ens.AllMavgPairs())
	if len(resA) != wantPairs || len(resB) != wantPairs {
		t.Fatalf("scan joins found %d / %d pairs, want %d", len(resA), len(resB), wantPairs)
	}
	if len(resD) != 2*wantPairs {
		t.Fatalf("method d found %d, want %d (each pair twice)", len(resD), 2*wantPairs)
	}
	if len(resC) != 2*len(ens.RawPairs) {
		t.Fatalf("method c found %d, want %d (raw pairs only, twice)", len(resC), 2*len(ens.RawPairs))
	}
	// a and b find identical pair sets.
	key := func(p JoinPair) [2]int64 {
		if p.A > p.B {
			return [2]int64{p.B, p.A}
		}
		return [2]int64{p.A, p.B}
	}
	setA := map[[2]int64]bool{}
	for _, p := range resA {
		setA[key(p)] = true
	}
	for _, p := range resB {
		if !setA[key(p)] {
			t.Fatalf("method b found pair %v that a did not", p)
		}
	}
	// d covers the same unordered pairs as a.
	setD := map[[2]int64]bool{}
	for _, p := range resD {
		setD[key(p)] = true
	}
	if len(setD) != wantPairs {
		t.Fatalf("method d covers %d unordered pairs, want %d", len(setD), wantPairs)
	}
	for k := range setA {
		if !setD[k] {
			t.Fatalf("method d missed pair %v", k)
		}
	}
	// Early abandoning must do strictly less distance work.
	if stB.DistanceTerms >= stA.DistanceTerms {
		t.Fatalf("early abandoning did not reduce distance terms: %d vs %d", stB.DistanceTerms, stA.DistanceTerms)
	}
}

func TestSelfJoinValidation(t *testing.T) {
	db, _ := newTestDB(t, 10, 12, Options{})
	if _, _, err := db.SelfJoin(-1, transform.Identity(testLen), JoinScanNaive); err == nil {
		t.Error("negative eps should fail")
	}
	if _, _, err := db.SelfJoin(1, transform.Identity(5), JoinIndexTransform); err == nil {
		t.Error("wrong transform length should fail")
	}
	if _, _, err := db.SelfJoin(1, transform.Identity(testLen), JoinMethod(42)); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestJoinMethodString(t *testing.T) {
	for _, m := range []JoinMethod{JoinScanNaive, JoinScanEarlyAbandon, JoinIndexPlain, JoinIndexTransform, JoinMethod(9)} {
		if m.String() == "" {
			t.Fatal("empty method name")
		}
	}
}

func TestJoinTwoSidedFindsReversedPairs(t *testing.T) {
	// Example 2.2: reversed stocks match under L = mavg20 ∘ reverse on the
	// index side and R = mavg20 on the probe side.
	ens, err := dataset.StockLike(60, testLen, 13, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(testLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ens.Series {
		if _, err := db.Insert(s.Name, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	mavg := transform.MovingAverage(testLen, 20)
	revMavg, err := transform.Reverse(testLen).Compose(mavg)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := db.JoinTwoSided(ens.Epsilon, revMavg, mavg)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int64]bool{}
	for _, p := range pairs {
		found[[2]int64{p.A, p.B}] = true
	}
	for _, pp := range ens.ReversedPairs {
		a, b := int64(pp.A), int64(pp.B)
		if !found[[2]int64{a, b}] && !found[[2]int64{b, a}] {
			t.Fatalf("two-sided join missed reversed pair %v; found %v", pp, pairs)
		}
	}
}

func TestDisablePartialPruneStillExact(t *testing.T) {
	db1, data := newTestDB(t, 120, 14, Options{})
	db2, _ := newTestDB(t, 120, 14, Options{DisablePartialPrune: true})
	q := data[3]
	rq := RangeQuery{Values: q, Eps: 1.5, Transform: transform.MovingAverage(testLen, 5)}
	r1, s1, err := db1.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := db2.RangeIndexed(rq)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("prune on/off changed results: %d vs %d", len(r1), len(r2))
	}
	if s2.Candidates < s1.Candidates {
		t.Fatalf("disabling pruning should not reduce candidates (%d vs %d)", s2.Candidates, s1.Candidates)
	}
}
