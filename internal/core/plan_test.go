package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/feature"
	"repro/internal/plan"
	"repro/internal/transform"
)

// planTestEngine builds an engine of n random-walk series (length 32).
func planTestEngine(t *testing.T, shards, n int) Engine {
	t.Helper()
	var eng Engine
	var err error
	if shards > 1 {
		eng, err = NewSharded(32, shards, Options{})
	} else {
		eng, err = NewDB(32, Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		vals := make([]float64, 32)
		v := 50 + 10*rng.Float64()
		for j := range vals {
			v += rng.Float64()*4 - 2
			vals[j] = v
		}
		if _, err := eng.Insert(fmt.Sprintf("S%04d", i), vals); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// TestPlannedRangeParity pins planned executions byte-identical to every
// forced strategy, on single-store and sharded engines.
func TestPlannedRangeParity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			eng := planTestEngine(t, shards, 160)
			tr := transform.MovingAverage(32, 5)
			for _, eps := range []float64{0.5, 3, 50} {
				q := RangeQuery{Values: mustSeries(t, eng, "S0007"), Eps: eps, Transform: tr}
				pl, err := eng.PlanRange(q, plan.Auto)
				if err != nil {
					t.Fatal(err)
				}
				if pl.Strategy == plan.Auto {
					t.Fatal("plan left strategy unresolved")
				}
				got, _, err := eng.ExecRange(q, pl)
				if err != nil {
					t.Fatal(err)
				}
				wantIdx, _, err := eng.RangeIndexed(q)
				if err != nil {
					t.Fatal(err)
				}
				wantScan, _, err := eng.RangeScanFreq(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, wantIdx) || !reflect.DeepEqual(got, wantScan) {
					t.Fatalf("eps=%g strategy=%v: planned answers diverge\n got %v\n idx %v\n scan %v",
						eps, pl.Strategy, got, wantIdx, wantScan)
				}
			}
		})
	}
}

func mustSeries(t *testing.T, eng Engine, name string) []float64 {
	t.Helper()
	id, ok := eng.IDByName(name)
	if !ok {
		t.Fatalf("unknown series %s", name)
	}
	v, err := eng.Series(id)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPlannerChoosesByRegime checks the planner picks the index for tight
// thresholds and the scan for thresholds selecting most of the store.
func TestPlannerChoosesByRegime(t *testing.T) {
	eng := planTestEngine(t, 1, 400)
	q := mustSeries(t, eng, "S0001")
	id := transform.Identity(32)

	tight := RangeQuery{Values: q, Eps: 0.2, Transform: id}
	pl, err := eng.PlanRange(tight, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != plan.Index {
		t.Fatalf("tight query planned %v (%s), want index", pl.Strategy, pl.Reason)
	}

	wide := RangeQuery{Values: q, Eps: 1000, Transform: id}
	pl, err = eng.PlanRange(wide, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != plan.ScanFreq {
		t.Fatalf("wide query planned %v (%s), want scan", pl.Strategy, pl.Reason)
	}
	if pl.Est.Selectivity < 0.9 {
		t.Fatalf("wide query selectivity = %g, want ~1", pl.Est.Selectivity)
	}
}

// TestPlannedNNParityAndFeedback checks NN plan parity and that executing
// planned queries feeds the tracker.
func TestPlannedNNParityAndFeedback(t *testing.T) {
	for _, shards := range []int{1, 3} {
		eng := planTestEngine(t, shards, 120)
		q := NNQuery{Values: mustSeries(t, eng, "S0002"), K: 7, Transform: transform.Identity(32)}
		pl, err := eng.PlanNN(q, plan.Auto)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.ExecNN(q, pl)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.NNIndexed(q)
		if err != nil {
			t.Fatal(err)
		}
		wantScan, _, err := eng.NNScan(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(got, wantScan) {
			t.Fatalf("shards=%d: planned NN diverges", shards)
		}
		if eng.PlannerStats().NNSamples == 0 {
			t.Fatalf("shards=%d: planned NN execution left no feedback", shards)
		}
	}
}

// TestMomentBoundsPinIndex: scan baselines ignore mean/std bounds, so the
// planner must never pick them for moment-bounded queries.
func TestMomentBoundsPinIndex(t *testing.T) {
	eng := planTestEngine(t, 1, 50)
	q := RangeQuery{
		Values:    mustSeries(t, eng, "S0003"),
		Eps:       1000, // wide enough that an unbounded query would plan a scan
		Transform: transform.Identity(32),
		Moments:   feature.Unbounded(),
	}
	pl, err := eng.PlanRange(q, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != plan.Index || pl.Forced {
		t.Fatalf("moment-bounded query planned %+v, want unforced index pin", pl)
	}
}

// TestShardProvenance checks fan-out merges record per-shard provenance
// that sums to the merged totals.
func TestShardProvenance(t *testing.T) {
	eng := planTestEngine(t, 4, 100)
	q := RangeQuery{Values: mustSeries(t, eng, "S0004"), Eps: 3, Transform: transform.Identity(32)}
	res, st, err := eng.RangeIndexed(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("provenance has %d shards, want 4", len(st.Shards))
	}
	sumResults, sumCand, sumNodes := 0, 0, 0
	for _, sh := range st.Shards {
		sumResults += sh.Results
		sumCand += sh.Candidates
		sumNodes += sh.NodeAccesses
	}
	if sumResults != len(res) || sumCand != st.Candidates || sumNodes != st.NodeAccesses {
		t.Fatalf("provenance does not sum to totals: %+v vs results=%d stats=%+v", st.Shards, len(res), st)
	}

	nn := NNQuery{Values: mustSeries(t, eng, "S0004"), K: 5, Transform: transform.Identity(32)}
	nres, nst, err := eng.NNIndexed(nn)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range nst.Shards {
		total += sh.Results
	}
	if total != len(nres) {
		t.Fatalf("NN provenance results = %d, want %d", total, len(nres))
	}
}

// TestRefreshCadenceOption checks a custom spectrum-refresh cadence
// answers byte-identically to the default.
func TestRefreshCadenceOption(t *testing.T) {
	build := func(every int) *DB {
		db, err := NewDB(16, Options{SpectrumRefreshEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 20; i++ {
			vals := make([]float64, 16)
			for j := range vals {
				vals[j] = rng.Float64() * 10
			}
			if _, err := db.Insert(fmt.Sprintf("A%02d", i), vals); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; step < 40; step++ {
			name := fmt.Sprintf("A%02d", step%20)
			if _, err := db.Append(name, []float64{float64(step) * 0.7}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	base := build(0)  // adaptive cadence (starts at the old default, 32)
	eager := build(1) // refresh on every append
	if base.refreshCadence() != 32 || eager.refreshCadence() != 1 {
		t.Fatalf("cadences resolved to %d and %d", base.refreshCadence(), eager.refreshCadence())
	}
	q := RangeQuery{Values: mustSeries(t, base, "A05"), Eps: 5, Transform: transform.Identity(16)}
	r1, _, err := base.RangeScanFreq(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := eager.RangeScanFreq(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("refresh cadences answer differently:\n %v\n %v", r1, r2)
	}
}

// TestJoinExplorationProbe: scan-routed joins leave no index feedback by
// themselves, so every joinExploreEvery-th unforced one must run sampled
// index probes that feed the join calibrator.
func TestJoinExplorationProbe(t *testing.T) {
	eng := planTestEngine(t, 1, 60)
	db := eng.(*DB)
	jq := JoinQuery{Eps: 500, Left: transform.Identity(32), Right: transform.Identity(32)}
	pl, err := db.PlanJoin(jq, plan.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != plan.ScanFreq {
		t.Skipf("wide join planned %v, not scan; probe not reachable", pl.Strategy)
	}
	for i := 0; i < joinExploreEvery; i++ {
		if _, _, err := db.ExecJoin(jq, pl); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.PlannerStats().JoinSamples; got == 0 {
		t.Fatalf("%d scan joins left no join feedback; exploration probe never fired", joinExploreEvery)
	}

	// Forced scans never probe: the caller pinned the strategy, so the
	// planner is not being asked to reconsider.
	db2 := planTestEngine(t, 1, 60).(*DB)
	fpl, err := db2.PlanJoin(jq, plan.ScanFreq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*joinExploreEvery; i++ {
		if _, _, err := db2.ExecJoin(jq, fpl); err != nil {
			t.Fatal(err)
		}
	}
	if got := db2.PlannerStats().JoinSamples; got != 0 {
		t.Fatalf("forced scan joins fed %d join samples, want 0", got)
	}
}
