//go:build race

package core

// raceEnabled reports that this binary runs under the race detector,
// whose instrumentation allocates on paths that are otherwise
// allocation-free.
const raceEnabled = true
