package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/rtree"
)

// Snapshot formats: small self-describing binary layouts (little endian).
//
// Version 1 ("TSQ1"), written by single-store DBs:
//
//	magic   [4]byte  "TSQ1"
//	space   uint8    0 = rect, 1 = polar
//	k       uint16
//	moments uint8    0/1
//	length  uint32   series length
//	count   uint32   number of series
//	repeat count times:
//	  nameLen uint16, name [nameLen]byte
//	  values  [length]float64
//
// Version 2 ("TSQ2"), written by Sharded stores, is identical except one
// field — the shard count — inserted between length and count:
//
//	...
//	length  uint32
//	shards  uint16   shard count the store ran with
//	count   uint32
//	...
//
// In TSQ1/TSQ2 only the raw series are stored: normal forms, spectra,
// feature points, and the indexes are all derived data and are rebuilt
// (with bulk loading) on read. Shard *assignment* is likewise derived — it
// is a pure hash of the series name — so any snapshot can be loaded at any
// shard count; the recorded count is only the default when the loader does
// not override it. Every reader accepts all versions.
//
// Version 3 ("TSQ3"), the current write format, uses the TSQ2 header
// layout (the shards field is always present; 1 for a single DB) and
// appends two derived-data sections between the series records and the
// planner trailers, making cold start O(bytes read) instead of
// O(n log n) recomputation:
//
//	magic   [4]byte "DERV"
//	repeat count times, in record order:
//	  point [dims]float64      indexed feature point
//	  spec  [2*length]float64  energy-ordered spectrum, (re, im) pairs
//
//	magic   [4]byte "SLAB"
//	shards  uint16             packed trees that follow, one per shard
//	repeat shards times:
//	  byteLen uint32
//	  tree    [byteLen]byte    rtree binary encoding (rtree.DecodeBinary)
//
// Tree leaf IDs are remapped at write time to dense record positions —
// exactly the IDs a loader assigns — so a load whose effective shard
// count matches the slab count validates and adopts each packed tree
// as-is (no feature extraction, no FFT, no STR sort). At any other shard
// count the loader still skips extraction and the FFT using DERV and only
// re-packs the trees. Readers accept snapshots without these sections
// (including truncated-to-TSQ2 streams) by falling back to full rebuild.

var (
	snapshotMagic   = [4]byte{'T', 'S', 'Q', '1'}
	snapshotMagicV2 = [4]byte{'T', 'S', 'Q', '2'}
	snapshotMagicV3 = [4]byte{'T', 'S', 'Q', '3'}

	// derivedMagic and slabMagic introduce the TSQ3 derived-data sections.
	derivedMagic = [4]byte{'D', 'E', 'R', 'V'}
	slabMagic    = [4]byte{'S', 'L', 'A', 'B'}

	// historyMagic introduces the optional plan-history trailer appended
	// after the series records by either version:
	//
	//	magic [4]byte "PLNH"
	//	seq   int64   history sequence counter
	//	count uint32  retained records, oldest first
	//	repeat count times: the plan.Record fields in order (strings as
	//	  uint16 length + bytes, ints as int64, bools as uint8)
	//
	// A snapshot that ends after the series records simply has no trailer
	// (the pre-trailer format); readers accept both.
	historyMagic = [4]byte{'P', 'L', 'N', 'H'}

	// costsMagic introduces the optional cost-calibration trailer after
	// the history trailer:
	//
	//	magic [4]byte "CCAL"
	//	scanUnit, nodeUnit, joinScanUnit, joinNodeUnit, joinProbeUnit
	//	  — five float64s, the plan.Costs fields in order
	//
	// It records the cost-model constants the store priced plans with, so
	// a reloaded snapshot keeps the same index-vs-scan break-even points
	// it had when written (planner continuity across restarts). Older
	// snapshots end after the history trailer; readers then calibrate
	// fresh.
	costsMagic = [4]byte{'C', 'C', 'A', 'L'}
)

// snapshotHeader is the decoded fixed-size prefix of any format version.
type snapshotHeader struct {
	schema feature.Schema
	length int
	shards int // 1 for TSQ1 snapshots
	count  int
	v3     bool // derived-data sections may follow the series records
}

// countingWriter tracks bytes through binary.Write.
type snapshotWriter struct {
	bw *bufio.Writer
	n  int64
}

func (w *snapshotWriter) write(data interface{}) error {
	if err := binary.Write(w.bw, binary.LittleEndian, data); err != nil {
		return err
	}
	w.n += int64(binary.Size(data))
	return nil
}

// writeFloats is the bulk-float fast path: snapshots are mostly float64
// runs (series values, spectra, feature points), and binary.Write's
// reflection costs more than the I/O for them. Encoding through a chunk
// buffer runs an order of magnitude faster.
func (w *snapshotWriter) writeFloats(vals []float64) error {
	var chunk [512]byte
	for len(vals) > 0 {
		n := len(chunk) / 8
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(vals[i]))
		}
		if _, err := w.bw.Write(chunk[:8*n]); err != nil {
			return err
		}
		w.n += int64(8 * n)
		vals = vals[n:]
	}
	return nil
}

// readFloats is the decode half of the fast path: one ReadFull into a
// reused scratch buffer, then manual bit conversion. Cold-start latency
// is dominated by this loop, so it must not pay reflection per element.
func readFloats(br *bufio.Reader, dst []float64, scratch *[]byte) error {
	need := 8 * len(dst)
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	buf := (*scratch)[:need]
	if _, err := io.ReadFull(br, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// writeHeader emits the fixed-size prefix under the given magic. The TSQ1
// layout omits the shards field; TSQ2/TSQ3 include it (and require
// shards >= 1).
func (w *snapshotWriter) writeHeader(magic [4]byte, sc feature.Schema, length, shards, count int) error {
	if magic != snapshotMagic && shards < 1 {
		return fmt.Errorf("core: %q snapshot needs a shard count, got %d", magic[:], shards)
	}
	if err := w.write(magic); err != nil {
		return err
	}
	var space uint8
	if sc.Space == feature.Polar {
		space = 1
	}
	if err := w.write(space); err != nil {
		return err
	}
	if err := w.write(uint16(sc.K)); err != nil {
		return err
	}
	var moments uint8
	if sc.Moments {
		moments = 1
	}
	if err := w.write(moments); err != nil {
		return err
	}
	if err := w.write(uint32(length)); err != nil {
		return err
	}
	if magic != snapshotMagic {
		if err := w.write(uint16(shards)); err != nil {
			return err
		}
	}
	return w.write(uint32(count))
}

// writeDerived emits the DERV section: every record's indexed feature
// point and energy-ordered spectrum, in record order. get(i) supplies the
// i-th record's pair.
func (w *snapshotWriter) writeDerived(dims, count int, get func(i int) (geom.Point, []complex128, error)) error {
	if err := w.write(derivedMagic); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		p, spec, err := get(i)
		if err != nil {
			return err
		}
		if len(p) != dims {
			return fmt.Errorf("core: record %d feature point has %d dims, schema has %d", i, len(p), dims)
		}
		if err := w.writeFloats(p); err != nil {
			return err
		}
		if err := w.writeFloats(relation.EncodeComplex(spec)); err != nil {
			return err
		}
	}
	return nil
}

// writeSlabs emits the SLAB section: each shard's packed tree in the
// rtree binary format, leaf IDs already remapped to dense global record
// positions (the IDs a loader assigns).
func (w *snapshotWriter) writeSlabs(trees []*index.KIndex, remap func(int64) (int64, bool)) error {
	if err := w.write(slabMagic); err != nil {
		return err
	}
	if err := w.write(uint16(len(trees))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, t := range trees {
		buf.Reset()
		if err := t.EncodeTree(&buf, remap); err != nil {
			return err
		}
		if err := w.write(uint32(buf.Len())); err != nil {
			return err
		}
		if err := w.write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// densePositions maps each snapshot ID to its dense record position — the
// ID the loader will assign — for slab leaf-ID remapping.
func densePositions(ids []int64) func(int64) (int64, bool) {
	pos := make(map[int64]int64, len(ids))
	for i, id := range ids {
		pos[id] = int64(i)
	}
	return func(id int64) (int64, bool) {
		p, ok := pos[id]
		return p, ok
	}
}

// writeSeries emits one name/values record.
func (w *snapshotWriter) writeSeries(name string, vals []float64) error {
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("core: series name of %d bytes exceeds snapshot limit", len(name))
	}
	if err := w.write(uint16(len(name))); err != nil {
		return err
	}
	if err := w.write([]byte(name)); err != nil {
		return err
	}
	return w.writeFloats(vals)
}

// writeString emits a length-prefixed string for the history trailer.
func (w *snapshotWriter) writeString(s string) error {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	if err := w.write(uint16(len(s))); err != nil {
		return err
	}
	return w.write([]byte(s))
}

// writeHistory appends the plan-history trailer, so planner drift
// diagnostics survive a snapshot round-trip.
func (w *snapshotWriter) writeHistory(h *plan.History) error {
	seq, recs := h.Export()
	if err := w.write(historyMagic); err != nil {
		return err
	}
	if err := w.write(seq); err != nil {
		return err
	}
	if err := w.write(uint32(len(recs))); err != nil {
		return err
	}
	for _, r := range recs {
		for _, s := range []string{r.Kind, r.Strategy, r.Method, r.Reason} {
			if err := w.writeString(s); err != nil {
				return err
			}
		}
		var forced uint8
		if r.Forced {
			forced = 1
		}
		for _, v := range []interface{}{
			r.Seq, forced, int64(r.Series), int64(r.Shards),
			r.EstCandidates, r.EstCost,
			int64(r.ActualCandidates), int64(r.ActualNodeAccesses),
			int64(r.Results), r.ElapsedUS,
		} {
			if err := w.write(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCosts appends the cost-calibration trailer.
func (w *snapshotWriter) writeCosts(c plan.Costs) error {
	if err := w.write(costsMagic); err != nil {
		return err
	}
	return w.write([]float64{
		c.ScanUnit, c.NodeUnit, c.JoinScanUnit, c.JoinNodeUnit, c.JoinProbeUnit,
	})
}

// WriteTo serializes the DB's contents in the TSQ3 format: raw series
// plus the DERV and SLAB derived sections, so a reload validates and
// adopts the packed index instead of rebuilding it. It returns the number
// of bytes written.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	sw := &snapshotWriter{bw: bufio.NewWriter(w)}
	ids := db.IDs()
	if err := sw.writeHeader(snapshotMagicV3, db.schema, db.length, 1, len(ids)); err != nil {
		return sw.n, err
	}
	for _, id := range ids {
		vals, err := db.Series(id)
		if err != nil {
			return sw.n, err
		}
		if err := sw.writeSeries(db.names[id], vals); err != nil {
			return sw.n, err
		}
	}
	// Spectra come from db.spectrum, not the stored record: a streamed
	// series whose stored spectrum lags its window serialises the exact
	// derived spectrum, so a reload is bit-identical to a flushed store.
	err := sw.writeDerived(db.schema.Dims(), len(ids), func(i int) (geom.Point, []complex128, error) {
		spec, err := db.spectrum(ids[i])
		return db.points[ids[i]], spec, err
	})
	if err != nil {
		return sw.n, err
	}
	if err := sw.writeSlabs([]*index.KIndex{db.idx}, densePositions(ids)); err != nil {
		return sw.n, err
	}
	if err := sw.writeHistory(db.history); err != nil {
		return sw.n, err
	}
	if err := sw.writeCosts(db.tracker.Costs()); err != nil {
		return sw.n, err
	}
	return sw.n, sw.bw.Flush()
}

// WriteLegacyTo serializes the DB's contents in the series-only TSQ1
// format — the downgrade-interop path (and the fixture generator for the
// snapshot-compat tests): any TSQ3-capable reader rebuilds derived state
// from it with bulk loading.
func (db *DB) WriteLegacyTo(w io.Writer) (int64, error) {
	sw := &snapshotWriter{bw: bufio.NewWriter(w)}
	if err := sw.writeHeader(snapshotMagic, db.schema, db.length, 0, len(db.ids)); err != nil {
		return sw.n, err
	}
	for _, id := range db.IDs() {
		vals, err := db.Series(id)
		if err != nil {
			return sw.n, err
		}
		if err := sw.writeSeries(db.names[id], vals); err != nil {
			return sw.n, err
		}
	}
	if err := sw.writeHistory(db.history); err != nil {
		return sw.n, err
	}
	if err := sw.writeCosts(db.tracker.Costs()); err != nil {
		return sw.n, err
	}
	return sw.n, sw.bw.Flush()
}

// WriteTo serializes the sharded store's contents in the TSQ3 format,
// recording the shard count, every series in global insertion order — so
// a snapshot round-trip reproduces the exact ID assignment — and one
// packed tree per shard. All shard locks are held in shared mode for the
// duration: the snapshot is a consistent cut of the whole store.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	entries := s.pinAll()
	defer s.runlockAll()

	sw := &snapshotWriter{bw: bufio.NewWriter(w)}
	if err := sw.writeHeader(snapshotMagicV3, s.Schema(), s.length, len(s.shards), len(entries)); err != nil {
		return sw.n, err
	}
	ids := make([]int64, len(entries))
	for i, e := range entries {
		ids[i] = e.id
		vals, err := e.sh.Series(e.id)
		if err != nil {
			return sw.n, err
		}
		if err := sw.writeSeries(e.sh.Name(e.id), vals); err != nil {
			return sw.n, err
		}
	}
	err := sw.writeDerived(s.Schema().Dims(), len(entries), func(i int) (geom.Point, []complex128, error) {
		e := entries[i]
		spec, err := e.sh.spectrum(e.id)
		return e.sh.points[e.id], spec, err
	})
	if err != nil {
		return sw.n, err
	}
	trees := make([]*index.KIndex, len(s.shards))
	for si, sh := range s.shards {
		trees[si] = sh.idx
	}
	if err := sw.writeSlabs(trees, densePositions(ids)); err != nil {
		return sw.n, err
	}
	if err := sw.writeHistory(s.history); err != nil {
		return sw.n, err
	}
	if err := sw.writeCosts(s.tracker.Costs()); err != nil {
		return sw.n, err
	}
	return sw.n, sw.bw.Flush()
}

// WriteLegacyTo serializes the sharded store's contents in the
// series-only TSQ2 format (downgrade interop and compat-test fixtures).
func (s *Sharded) WriteLegacyTo(w io.Writer) (int64, error) {
	entries := s.pinAll()
	defer s.runlockAll()

	sw := &snapshotWriter{bw: bufio.NewWriter(w)}
	if err := sw.writeHeader(snapshotMagicV2, s.Schema(), s.length, len(s.shards), len(entries)); err != nil {
		return sw.n, err
	}
	for _, e := range entries {
		vals, err := e.sh.Series(e.id)
		if err != nil {
			return sw.n, err
		}
		if err := sw.writeSeries(e.sh.Name(e.id), vals); err != nil {
			return sw.n, err
		}
	}
	if err := sw.writeHistory(s.history); err != nil {
		return sw.n, err
	}
	if err := sw.writeCosts(s.tracker.Costs()); err != nil {
		return sw.n, err
	}
	return sw.n, sw.bw.Flush()
}

// readHeader decodes either snapshot version's fixed-size prefix.
func readHeader(br *bufio.Reader) (snapshotHeader, error) {
	var h snapshotHeader
	read := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	var magic [4]byte
	if err := read(&magic); err != nil {
		return h, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	h.v3 = magic == snapshotMagicV3
	hasShards := magic == snapshotMagicV2 || h.v3
	if magic != snapshotMagic && !hasShards {
		return h, fmt.Errorf("core: not a tsq snapshot (magic %q)", magic[:])
	}
	var space, moments uint8
	var k, shards uint16
	var length, count uint32
	if err := read(&space); err != nil {
		return h, err
	}
	if err := read(&k); err != nil {
		return h, err
	}
	if err := read(&moments); err != nil {
		return h, err
	}
	if err := read(&length); err != nil {
		return h, err
	}
	if hasShards {
		if err := read(&shards); err != nil {
			return h, err
		}
		if shards == 0 {
			return h, fmt.Errorf("core: snapshot records zero shards")
		}
	} else {
		shards = 1
	}
	if err := read(&count); err != nil {
		return h, err
	}
	if space > 1 {
		return h, fmt.Errorf("core: snapshot has unknown space %d", space)
	}
	h.schema = feature.Schema{Space: feature.Rect, K: int(k), Moments: moments == 1}
	if space == 1 {
		h.schema.Space = feature.Polar
	}
	h.length = int(length)
	h.shards = int(shards)
	h.count = int(count)
	return h, nil
}

// readSeries decodes the record section following a header. When keepRaw
// is set it returns each record's value bytes exactly as stored (one
// backing array, sliced per record) and skips the float decode entirely:
// the snapshot layout is the page-file record layout, so the cold-start
// load hands those bytes to Relation.InsertRaw, and a caller that does
// need floats (a rebuild load) recovers them with decodeRawSeries.
// Exactly one of the values/raw returns is non-nil.
func readSeries(br *bufio.Reader, h snapshotHeader, keepRaw bool) ([]string, [][]float64, [][]byte, error) {
	names := make([]string, h.count)
	var values [][]float64
	var raw [][]byte
	var rawBuf []byte
	if keepRaw {
		raw = make([][]byte, h.count)
		rawBuf = make([]byte, h.count*8*h.length)
	} else {
		values = make([][]float64, h.count)
	}
	var scratch []byte
	var lenBuf [2]byte
	for i := 0; i < h.count; i++ {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, nil, nil, fmt.Errorf("core: reading series %d: %w", i, err)
		}
		nameBuf := make([]byte, binary.LittleEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, nil, nil, fmt.Errorf("core: reading series %d name: %w", i, err)
		}
		names[i] = string(nameBuf)
		if keepRaw {
			rec := rawBuf[i*8*h.length : (i+1)*8*h.length]
			if _, err := io.ReadFull(br, rec); err != nil {
				return nil, nil, nil, fmt.Errorf("core: reading series %q values: %w", names[i], err)
			}
			raw[i] = rec
		} else {
			vals := make([]float64, h.length)
			if err := readFloats(br, vals, &scratch); err != nil {
				return nil, nil, nil, fmt.Errorf("core: reading series %q values: %w", names[i], err)
			}
			values[i] = vals
		}
	}
	return names, values, raw, nil
}

// decodeRawSeries converts raw series records kept by readSeries back to
// float values, for loads that must rebuild derived state from them.
func decodeRawSeries(raw [][]byte, length int) [][]float64 {
	values := make([][]float64, len(raw))
	for i, rec := range raw {
		vals := make([]float64, length)
		for j := range vals {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8*j:]))
		}
		values[i] = vals
	}
	return values
}

// derivedSections carries a TSQ3 snapshot's precomputed derived data.
// Fields are nil when the corresponding section is absent. Spectra stay
// in their on-disk encoding — little-endian float64 bytes of the
// energy-ordered interleaved (re, im) record, identical to the page-file
// record layout — so the load path moves them into pages with a copy
// rather than a decode/re-encode round trip.
type derivedSections struct {
	points []geom.Point
	specs  [][]byte
	trees  []*rtree.Tree
}

// peekMagic reports whether the next four bytes equal magic without
// consuming them. A short stream (EOF inside the peek) reports false.
func peekMagic(br *bufio.Reader, magic [4]byte) bool {
	b, err := br.Peek(4)
	if err != nil {
		return false
	}
	return [4]byte{b[0], b[1], b[2], b[3]} == magic
}

// readDerivedSections decodes the optional DERV and SLAB sections of a
// TSQ3 snapshot. Either may be absent (the stream then continues with the
// planner trailers); section order is fixed.
func readDerivedSections(br *bufio.Reader, h snapshotHeader) (derivedSections, error) {
	var der derivedSections
	read := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	if peekMagic(br, derivedMagic) {
		br.Discard(4)
		dims := h.schema.Dims()
		recLen := 2 * 8 * h.length
		der.points = make([]geom.Point, h.count)
		der.specs = make([][]byte, h.count)
		specBuf := make([]byte, h.count*recLen)
		var scratch []byte
		for i := 0; i < h.count; i++ {
			p := make([]float64, dims)
			if err := readFloats(br, p, &scratch); err != nil {
				return der, fmt.Errorf("core: reading derived point %d: %w", i, err)
			}
			rec := specBuf[i*recLen : (i+1)*recLen]
			if _, err := io.ReadFull(br, rec); err != nil {
				return der, fmt.Errorf("core: reading derived spectrum %d: %w", i, err)
			}
			der.points[i] = p
			der.specs[i] = rec
		}
	}
	if peekMagic(br, slabMagic) {
		br.Discard(4)
		var nTrees uint16
		if err := read(&nTrees); err != nil {
			return der, fmt.Errorf("core: reading slab count: %w", err)
		}
		der.trees = make([]*rtree.Tree, nTrees)
		for i := range der.trees {
			var byteLen uint32
			if err := read(&byteLen); err != nil {
				return der, fmt.Errorf("core: reading slab %d length: %w", i, err)
			}
			t, err := rtree.DecodeBinary(io.LimitReader(br, int64(byteLen)))
			if err != nil {
				return der, fmt.Errorf("core: decoding packed tree %d: %w", i, err)
			}
			der.trees[i] = t
		}
	}
	return der, nil
}

// readString decodes a length-prefixed trailer string.
func readString(br *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readHistory decodes the optional plan-history trailer. A clean EOF
// right after the series records means a pre-trailer snapshot: ok is
// false and the error nil.
func readHistory(br *bufio.Reader) (seq int64, recs []plan.Record, ok bool, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF {
			return 0, nil, false, nil
		}
		return 0, nil, false, fmt.Errorf("core: reading history trailer: %w", err)
	}
	if magic != historyMagic {
		return 0, nil, false, fmt.Errorf("core: unexpected snapshot trailer (magic %q)", magic[:])
	}
	read := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	var count uint32
	if err := read(&seq); err != nil {
		return 0, nil, false, fmt.Errorf("core: reading history trailer: %w", err)
	}
	if err := read(&count); err != nil {
		return 0, nil, false, fmt.Errorf("core: reading history trailer: %w", err)
	}
	recs = make([]plan.Record, count)
	for i := range recs {
		r := &recs[i]
		for _, dst := range []*string{&r.Kind, &r.Strategy, &r.Method, &r.Reason} {
			s, err := readString(br)
			if err != nil {
				return 0, nil, false, fmt.Errorf("core: reading history record %d: %w", i, err)
			}
			*dst = s
		}
		var forced uint8
		var series, shards, actualCand, actualNodes, results int64
		for _, dst := range []interface{}{
			&r.Seq, &forced, &series, &shards,
			&r.EstCandidates, &r.EstCost,
			&actualCand, &actualNodes, &results, &r.ElapsedUS,
		} {
			if err := read(dst); err != nil {
				return 0, nil, false, fmt.Errorf("core: reading history record %d: %w", i, err)
			}
		}
		r.Forced = forced == 1
		r.Series = int(series)
		r.Shards = int(shards)
		r.ActualCandidates = int(actualCand)
		r.ActualNodeAccesses = int(actualNodes)
		r.Results = int(results)
	}
	return seq, recs, true, nil
}

// readCosts decodes the optional cost-calibration trailer. A clean EOF
// means a pre-CCAL snapshot: ok is false and the error nil.
func readCosts(br *bufio.Reader) (c plan.Costs, ok bool, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF {
			return c, false, nil
		}
		return c, false, fmt.Errorf("core: reading costs trailer: %w", err)
	}
	if magic != costsMagic {
		return c, false, fmt.Errorf("core: unexpected snapshot trailer (magic %q)", magic[:])
	}
	var vals [5]float64
	if err := binary.Read(br, binary.LittleEndian, vals[:]); err != nil {
		return c, false, fmt.Errorf("core: reading costs trailer: %w", err)
	}
	c = plan.Costs{
		ScanUnit:      vals[0],
		NodeUnit:      vals[1],
		JoinScanUnit:  vals[2],
		JoinNodeUnit:  vals[3],
		JoinProbeUnit: vals[4],
	}
	for _, v := range vals {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return plan.Costs{}, false, fmt.Errorf("core: costs trailer carries invalid constant %g", v)
		}
	}
	return c, true, nil
}

// ReadEngine deserializes a snapshot (any version) into a fresh store.
// shards selects the partitioning of the loaded store: 0 honors the count
// recorded in the snapshot (1 for TSQ1 snapshots), 1 forces a single
// unsharded DB, and n > 1 forces an n-way Sharded store — re-sharding is
// always possible because partition assignment is a pure hash of the
// series name. The opts' Schema is ignored (the snapshot records its own)
// but storage options apply to every shard.
//
// Derived state loads by the cheapest sound path the snapshot allows:
// a TSQ3 snapshot whose slab count matches the effective shard count
// validates and adopts the packed trees as-is (no extraction, no FFT, no
// STR sort — cold start is O(bytes read)); a TSQ3 snapshot loaded at a
// different shard count reuses the DERV points and spectra and only
// re-packs the trees; TSQ1/TSQ2 snapshots rebuild everything with bulk
// loading.
func ReadEngine(r io.Reader, opts Options, shards int) (Engine, error) {
	br := bufio.NewReaderSize(r, 1<<18)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if shards == 0 {
		shards = h.shards
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count %d must be >= 0", shards)
	}
	names, values, rawVals, err := readSeries(br, h, h.v3)
	if err != nil {
		return nil, err
	}
	var der derivedSections
	if h.v3 {
		if der, err = readDerivedSections(br, h); err != nil {
			return nil, err
		}
		if der.points == nil {
			// No DERV section: this load rebuilds derived state from the
			// values, so decode them after all (the adopt path below never
			// needs the floats and skips this).
			values = decodeRawSeries(rawVals, h.length)
		}
	}
	seq, recs, haveHist, err := readHistory(br)
	if err != nil {
		return nil, err
	}
	var costs plan.Costs
	haveCosts := false
	if haveHist {
		if costs, haveCosts, err = readCosts(br); err != nil {
			return nil, err
		}
	}
	// The packed trees partition records exactly as the writing store did;
	// they are adoptable only when this load partitions the same way.
	trees := der.trees
	if len(trees) != shards || der.points == nil {
		trees = nil
	}
	opts.Schema = h.schema
	if shards == 1 {
		db, err := NewDB(h.length, opts)
		if err != nil {
			return nil, err
		}
		ids := make([]int64, len(names))
		for i := range ids {
			ids[i] = int64(i)
		}
		var tree *rtree.Tree
		if trees != nil {
			tree = trees[0]
		}
		if der.points != nil {
			err = db.loadBulk(names, values, ids, der.points, rawVals, der.specs, tree)
		} else {
			err = db.InsertBulk(names, values)
		}
		if err != nil {
			db.Close()
			return nil, err
		}
		if haveHist {
			db.history.Import(seq, recs)
		}
		if haveCosts {
			db.tracker.SetCosts(costs)
		}
		return db, nil
	}
	s, err := NewSharded(h.length, shards, opts)
	if err != nil {
		return nil, err
	}
	if err := s.insertBulkPrepared(names, values, rawVals, der.points, der.specs, trees); err != nil {
		s.Close()
		return nil, err
	}
	if haveHist {
		s.history.Import(seq, recs)
	}
	if haveCosts {
		s.tracker.SetCosts(costs)
	}
	return s, nil
}

// ReadFrom deserializes a snapshot (either version) into a fresh single
// DB, regardless of any shard count the snapshot records. The opts'
// Schema is ignored — the snapshot records its own — but storage options
// (page size, R-tree capacity) apply.
func ReadFrom(r io.Reader, opts Options) (*DB, error) {
	eng, err := ReadEngine(r, opts, 1)
	if err != nil {
		return nil, err
	}
	return eng.(*DB), nil
}
