package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/feature"
	"repro/internal/plan"
)

// Snapshot formats: small self-describing binary layouts (little endian).
//
// Version 1 ("TSQ1"), written by single-store DBs:
//
//	magic   [4]byte  "TSQ1"
//	space   uint8    0 = rect, 1 = polar
//	k       uint16
//	moments uint8    0/1
//	length  uint32   series length
//	count   uint32   number of series
//	repeat count times:
//	  nameLen uint16, name [nameLen]byte
//	  values  [length]float64
//
// Version 2 ("TSQ2"), written by Sharded stores, is identical except one
// field — the shard count — inserted between length and count:
//
//	...
//	length  uint32
//	shards  uint16   shard count the store ran with
//	count   uint32
//	...
//
// Only the raw series are stored: normal forms, spectra, feature points,
// and the indexes are all derived data and are rebuilt (with bulk loading)
// on read. Shard *assignment* is likewise derived — it is a pure hash of
// the series name — so any snapshot can be loaded at any shard count; the
// recorded count is only the default when the loader does not override
// it. Every reader accepts both versions.

var (
	snapshotMagic   = [4]byte{'T', 'S', 'Q', '1'}
	snapshotMagicV2 = [4]byte{'T', 'S', 'Q', '2'}

	// historyMagic introduces the optional plan-history trailer appended
	// after the series records by either version:
	//
	//	magic [4]byte "PLNH"
	//	seq   int64   history sequence counter
	//	count uint32  retained records, oldest first
	//	repeat count times: the plan.Record fields in order (strings as
	//	  uint16 length + bytes, ints as int64, bools as uint8)
	//
	// A snapshot that ends after the series records simply has no trailer
	// (the pre-trailer format); readers accept both.
	historyMagic = [4]byte{'P', 'L', 'N', 'H'}

	// costsMagic introduces the optional cost-calibration trailer after
	// the history trailer:
	//
	//	magic [4]byte "CCAL"
	//	scanUnit, nodeUnit, joinScanUnit, joinNodeUnit, joinProbeUnit
	//	  — five float64s, the plan.Costs fields in order
	//
	// It records the cost-model constants the store priced plans with, so
	// a reloaded snapshot keeps the same index-vs-scan break-even points
	// it had when written (planner continuity across restarts). Older
	// snapshots end after the history trailer; readers then calibrate
	// fresh.
	costsMagic = [4]byte{'C', 'C', 'A', 'L'}
)

// snapshotHeader is the decoded fixed-size prefix of either format.
type snapshotHeader struct {
	schema feature.Schema
	length int
	shards int // 1 for TSQ1 snapshots
	count  int
}

// countingWriter tracks bytes through binary.Write.
type snapshotWriter struct {
	bw *bufio.Writer
	n  int64
}

func (w *snapshotWriter) write(data interface{}) error {
	if err := binary.Write(w.bw, binary.LittleEndian, data); err != nil {
		return err
	}
	w.n += int64(binary.Size(data))
	return nil
}

// writeHeader emits the fixed-size prefix; shards < 1 selects the TSQ1
// layout, shards >= 1 the TSQ2 layout with that shard count.
func (w *snapshotWriter) writeHeader(sc feature.Schema, length, shards, count int) error {
	magic := snapshotMagic
	if shards >= 1 {
		magic = snapshotMagicV2
	}
	if err := w.write(magic); err != nil {
		return err
	}
	var space uint8
	if sc.Space == feature.Polar {
		space = 1
	}
	if err := w.write(space); err != nil {
		return err
	}
	if err := w.write(uint16(sc.K)); err != nil {
		return err
	}
	var moments uint8
	if sc.Moments {
		moments = 1
	}
	if err := w.write(moments); err != nil {
		return err
	}
	if err := w.write(uint32(length)); err != nil {
		return err
	}
	if shards >= 1 {
		if err := w.write(uint16(shards)); err != nil {
			return err
		}
	}
	return w.write(uint32(count))
}

// writeSeries emits one name/values record.
func (w *snapshotWriter) writeSeries(name string, vals []float64) error {
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("core: series name of %d bytes exceeds snapshot limit", len(name))
	}
	if err := w.write(uint16(len(name))); err != nil {
		return err
	}
	if err := w.write([]byte(name)); err != nil {
		return err
	}
	return w.write(vals)
}

// writeString emits a length-prefixed string for the history trailer.
func (w *snapshotWriter) writeString(s string) error {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	if err := w.write(uint16(len(s))); err != nil {
		return err
	}
	return w.write([]byte(s))
}

// writeHistory appends the plan-history trailer, so planner drift
// diagnostics survive a snapshot round-trip.
func (w *snapshotWriter) writeHistory(h *plan.History) error {
	seq, recs := h.Export()
	if err := w.write(historyMagic); err != nil {
		return err
	}
	if err := w.write(seq); err != nil {
		return err
	}
	if err := w.write(uint32(len(recs))); err != nil {
		return err
	}
	for _, r := range recs {
		for _, s := range []string{r.Kind, r.Strategy, r.Method, r.Reason} {
			if err := w.writeString(s); err != nil {
				return err
			}
		}
		var forced uint8
		if r.Forced {
			forced = 1
		}
		for _, v := range []interface{}{
			r.Seq, forced, int64(r.Series), int64(r.Shards),
			r.EstCandidates, r.EstCost,
			int64(r.ActualCandidates), int64(r.ActualNodeAccesses),
			int64(r.Results), r.ElapsedUS,
		} {
			if err := w.write(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCosts appends the cost-calibration trailer.
func (w *snapshotWriter) writeCosts(c plan.Costs) error {
	if err := w.write(costsMagic); err != nil {
		return err
	}
	return w.write([]float64{
		c.ScanUnit, c.NodeUnit, c.JoinScanUnit, c.JoinNodeUnit, c.JoinProbeUnit,
	})
}

// WriteTo serializes the DB's contents in the TSQ1 format. It returns the
// number of bytes written.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	sw := &snapshotWriter{bw: bufio.NewWriter(w)}
	if err := sw.writeHeader(db.schema, db.length, 0, len(db.ids)); err != nil {
		return sw.n, err
	}
	for _, id := range db.IDs() {
		vals, err := db.Series(id)
		if err != nil {
			return sw.n, err
		}
		if err := sw.writeSeries(db.names[id], vals); err != nil {
			return sw.n, err
		}
	}
	if err := sw.writeHistory(db.history); err != nil {
		return sw.n, err
	}
	if err := sw.writeCosts(db.tracker.Costs()); err != nil {
		return sw.n, err
	}
	return sw.n, sw.bw.Flush()
}

// WriteTo serializes the sharded store's contents in the TSQ2 format,
// recording the shard count and every series in global insertion order —
// so a snapshot round-trip reproduces the exact ID assignment. All shard
// locks are held in shared mode for the duration: the snapshot is a
// consistent cut of the whole store.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	entries := s.pinAll()
	defer s.runlockAll()

	sw := &snapshotWriter{bw: bufio.NewWriter(w)}
	if err := sw.writeHeader(s.Schema(), s.length, len(s.shards), len(entries)); err != nil {
		return sw.n, err
	}
	for _, e := range entries {
		vals, err := e.sh.Series(e.id)
		if err != nil {
			return sw.n, err
		}
		if err := sw.writeSeries(e.sh.Name(e.id), vals); err != nil {
			return sw.n, err
		}
	}
	if err := sw.writeHistory(s.history); err != nil {
		return sw.n, err
	}
	if err := sw.writeCosts(s.tracker.Costs()); err != nil {
		return sw.n, err
	}
	return sw.n, sw.bw.Flush()
}

// readHeader decodes either snapshot version's fixed-size prefix.
func readHeader(br *bufio.Reader) (snapshotHeader, error) {
	var h snapshotHeader
	read := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	var magic [4]byte
	if err := read(&magic); err != nil {
		return h, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	v2 := magic == snapshotMagicV2
	if magic != snapshotMagic && !v2 {
		return h, fmt.Errorf("core: not a tsq snapshot (magic %q)", magic[:])
	}
	var space, moments uint8
	var k, shards uint16
	var length, count uint32
	if err := read(&space); err != nil {
		return h, err
	}
	if err := read(&k); err != nil {
		return h, err
	}
	if err := read(&moments); err != nil {
		return h, err
	}
	if err := read(&length); err != nil {
		return h, err
	}
	if v2 {
		if err := read(&shards); err != nil {
			return h, err
		}
		if shards == 0 {
			return h, fmt.Errorf("core: snapshot records zero shards")
		}
	} else {
		shards = 1
	}
	if err := read(&count); err != nil {
		return h, err
	}
	if space > 1 {
		return h, fmt.Errorf("core: snapshot has unknown space %d", space)
	}
	h.schema = feature.Schema{Space: feature.Rect, K: int(k), Moments: moments == 1}
	if space == 1 {
		h.schema.Space = feature.Polar
	}
	h.length = int(length)
	h.shards = int(shards)
	h.count = int(count)
	return h, nil
}

// readSeries decodes the record section following a header.
func readSeries(br *bufio.Reader, h snapshotHeader) ([]string, [][]float64, error) {
	names := make([]string, h.count)
	values := make([][]float64, h.count)
	for i := 0; i < h.count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, nil, fmt.Errorf("core: reading series %d: %w", i, err)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, nil, fmt.Errorf("core: reading series %d name: %w", i, err)
		}
		vals := make([]float64, h.length)
		if err := binary.Read(br, binary.LittleEndian, vals); err != nil {
			return nil, nil, fmt.Errorf("core: reading series %q values: %w", nameBuf, err)
		}
		names[i] = string(nameBuf)
		values[i] = vals
	}
	return names, values, nil
}

// readString decodes a length-prefixed trailer string.
func readString(br *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readHistory decodes the optional plan-history trailer. A clean EOF
// right after the series records means a pre-trailer snapshot: ok is
// false and the error nil.
func readHistory(br *bufio.Reader) (seq int64, recs []plan.Record, ok bool, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF {
			return 0, nil, false, nil
		}
		return 0, nil, false, fmt.Errorf("core: reading history trailer: %w", err)
	}
	if magic != historyMagic {
		return 0, nil, false, fmt.Errorf("core: unexpected snapshot trailer (magic %q)", magic[:])
	}
	read := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	var count uint32
	if err := read(&seq); err != nil {
		return 0, nil, false, fmt.Errorf("core: reading history trailer: %w", err)
	}
	if err := read(&count); err != nil {
		return 0, nil, false, fmt.Errorf("core: reading history trailer: %w", err)
	}
	recs = make([]plan.Record, count)
	for i := range recs {
		r := &recs[i]
		for _, dst := range []*string{&r.Kind, &r.Strategy, &r.Method, &r.Reason} {
			s, err := readString(br)
			if err != nil {
				return 0, nil, false, fmt.Errorf("core: reading history record %d: %w", i, err)
			}
			*dst = s
		}
		var forced uint8
		var series, shards, actualCand, actualNodes, results int64
		for _, dst := range []interface{}{
			&r.Seq, &forced, &series, &shards,
			&r.EstCandidates, &r.EstCost,
			&actualCand, &actualNodes, &results, &r.ElapsedUS,
		} {
			if err := read(dst); err != nil {
				return 0, nil, false, fmt.Errorf("core: reading history record %d: %w", i, err)
			}
		}
		r.Forced = forced == 1
		r.Series = int(series)
		r.Shards = int(shards)
		r.ActualCandidates = int(actualCand)
		r.ActualNodeAccesses = int(actualNodes)
		r.Results = int(results)
	}
	return seq, recs, true, nil
}

// readCosts decodes the optional cost-calibration trailer. A clean EOF
// means a pre-CCAL snapshot: ok is false and the error nil.
func readCosts(br *bufio.Reader) (c plan.Costs, ok bool, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF {
			return c, false, nil
		}
		return c, false, fmt.Errorf("core: reading costs trailer: %w", err)
	}
	if magic != costsMagic {
		return c, false, fmt.Errorf("core: unexpected snapshot trailer (magic %q)", magic[:])
	}
	var vals [5]float64
	if err := binary.Read(br, binary.LittleEndian, vals[:]); err != nil {
		return c, false, fmt.Errorf("core: reading costs trailer: %w", err)
	}
	c = plan.Costs{
		ScanUnit:      vals[0],
		NodeUnit:      vals[1],
		JoinScanUnit:  vals[2],
		JoinNodeUnit:  vals[3],
		JoinProbeUnit: vals[4],
	}
	for _, v := range vals {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return plan.Costs{}, false, fmt.Errorf("core: costs trailer carries invalid constant %g", v)
		}
	}
	return c, true, nil
}

// ReadEngine deserializes a snapshot (either version) into a fresh store,
// rebuilding derived state with bulk loading. shards selects the
// partitioning of the loaded store: 0 honors the count recorded in the
// snapshot (1 for TSQ1 snapshots), 1 forces a single unsharded DB, and
// n > 1 forces an n-way Sharded store — re-sharding is always possible
// because partition assignment is a pure hash of the series name. The
// opts' Schema is ignored (the snapshot records its own) but storage
// options apply to every shard.
func ReadEngine(r io.Reader, opts Options, shards int) (Engine, error) {
	br := bufio.NewReader(r)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if shards == 0 {
		shards = h.shards
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count %d must be >= 0", shards)
	}
	names, values, err := readSeries(br, h)
	if err != nil {
		return nil, err
	}
	seq, recs, haveHist, err := readHistory(br)
	if err != nil {
		return nil, err
	}
	var costs plan.Costs
	haveCosts := false
	if haveHist {
		if costs, haveCosts, err = readCosts(br); err != nil {
			return nil, err
		}
	}
	opts.Schema = h.schema
	if shards == 1 {
		db, err := NewDB(h.length, opts)
		if err != nil {
			return nil, err
		}
		if err := db.InsertBulk(names, values); err != nil {
			return nil, err
		}
		if haveHist {
			db.history.Import(seq, recs)
		}
		if haveCosts {
			db.tracker.SetCosts(costs)
		}
		return db, nil
	}
	s, err := NewSharded(h.length, shards, opts)
	if err != nil {
		return nil, err
	}
	if err := s.InsertBulk(names, values); err != nil {
		return nil, err
	}
	if haveHist {
		s.history.Import(seq, recs)
	}
	if haveCosts {
		s.tracker.SetCosts(costs)
	}
	return s, nil
}

// ReadFrom deserializes a snapshot (either version) into a fresh single
// DB, regardless of any shard count the snapshot records. The opts'
// Schema is ignored — the snapshot records its own — but storage options
// (page size, R-tree capacity) apply.
func ReadFrom(r io.Reader, opts Options) (*DB, error) {
	eng, err := ReadEngine(r, opts, 1)
	if err != nil {
		return nil, err
	}
	return eng.(*DB), nil
}
