package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/feature"
)

// Snapshot format: a small self-describing binary layout (little endian).
//
//	magic   [4]byte  "TSQ1"
//	space   uint8    0 = rect, 1 = polar
//	k       uint16
//	moments uint8    0/1
//	length  uint32   series length
//	count   uint32   number of series
//	repeat count times:
//	  nameLen uint16, name [nameLen]byte
//	  values  [length]float64
//
// Only the raw series are stored: normal forms, spectra, feature points,
// and the index are all derived data and are rebuilt (with bulk loading)
// on read. This keeps snapshots compact and the format independent of
// index implementation details.

var snapshotMagic = [4]byte{'T', 'S', 'Q', '1'}

// WriteTo serializes the DB's contents. It returns the number of bytes
// written.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if err := write(snapshotMagic); err != nil {
		return n, err
	}
	var space uint8
	if db.schema.Space == feature.Polar {
		space = 1
	}
	if err := write(space); err != nil {
		return n, err
	}
	if err := write(uint16(db.schema.K)); err != nil {
		return n, err
	}
	var moments uint8
	if db.schema.Moments {
		moments = 1
	}
	if err := write(moments); err != nil {
		return n, err
	}
	if err := write(uint32(db.length)); err != nil {
		return n, err
	}
	if err := write(uint32(len(db.ids))); err != nil {
		return n, err
	}
	for _, id := range db.ids {
		name := db.names[id]
		if len(name) > math.MaxUint16 {
			return n, fmt.Errorf("core: series name of %d bytes exceeds snapshot limit", len(name))
		}
		if err := write(uint16(len(name))); err != nil {
			return n, err
		}
		if err := write([]byte(name)); err != nil {
			return n, err
		}
		vals, err := db.Series(id)
		if err != nil {
			return n, err
		}
		if err := write(vals); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a snapshot produced by WriteTo into a fresh DB,
// rebuilding derived state (spectra, feature points, index) with bulk
// loading. The opts' Schema is ignored — the snapshot records its own —
// but storage options (page size, R-tree capacity) apply.
func ReadFrom(r io.Reader, opts Options) (*DB, error) {
	br := bufio.NewReader(r)
	read := func(data interface{}) error {
		return binary.Read(br, binary.LittleEndian, data)
	}
	var magic [4]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("core: not a tsq snapshot (magic %q)", magic[:])
	}
	var space, moments uint8
	var k uint16
	var length, count uint32
	if err := read(&space); err != nil {
		return nil, err
	}
	if err := read(&k); err != nil {
		return nil, err
	}
	if err := read(&moments); err != nil {
		return nil, err
	}
	if err := read(&length); err != nil {
		return nil, err
	}
	if err := read(&count); err != nil {
		return nil, err
	}
	if space > 1 {
		return nil, fmt.Errorf("core: snapshot has unknown space %d", space)
	}
	sc := feature.Schema{Space: feature.Rect, K: int(k), Moments: moments == 1}
	if space == 1 {
		sc.Space = feature.Polar
	}
	opts.Schema = sc
	db, err := NewDB(int(length), opts)
	if err != nil {
		return nil, err
	}

	names := make([]string, count)
	values := make([][]float64, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := read(&nameLen); err != nil {
			return nil, fmt.Errorf("core: reading series %d: %w", i, err)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("core: reading series %d name: %w", i, err)
		}
		vals := make([]float64, length)
		if err := read(vals); err != nil {
			return nil, fmt.Errorf("core: reading series %q values: %w", nameBuf, err)
		}
		names[i] = string(nameBuf)
		values[i] = vals
	}
	if err := db.InsertBulk(names, values); err != nil {
		return nil, err
	}
	return db, nil
}
