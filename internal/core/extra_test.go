package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dft"
	"repro/internal/series"
	"repro/internal/transform"
)

// TestNNBothSidesMatchesOracle pins the two-sided nearest-neighbor
// semantics D(T(nf(x)), T(nf(q))) against a brute-force oracle.
func TestNNBothSidesMatchesOracle(t *testing.T) {
	db, data := newTestDB(t, 150, 21, Options{})
	r := rand.New(rand.NewSource(22))
	q := dataset.RandomWalk(r, testLen)
	tr := transform.MovingAverage(testLen, 10)

	res, _, err := db.NNIndexed(NNQuery{Values: q, K: 7, Transform: tr, BothSides: true})
	if err != nil {
		t.Fatal(err)
	}
	scan, _, err := db.NNScan(NNQuery{Values: q, K: 7, Transform: tr, BothSides: true})
	if err != nil {
		t.Fatal(err)
	}

	Q := tr.Apply(dft.TransformReal(series.NormalForm(q)))
	dists := make([]float64, len(data))
	for i, x := range data {
		X := tr.Apply(dft.TransformReal(series.NormalForm(x)))
		dists[i] = dft.Distance(X, Q)
	}
	sort.Float64s(dists)
	for i := 0; i < 7; i++ {
		if math.Abs(res[i].Dist-dists[i]) > 1e-6 {
			t.Fatalf("indexed rank %d: %v != oracle %v", i, res[i].Dist, dists[i])
		}
		if math.Abs(scan[i].Dist-dists[i]) > 1e-6 {
			t.Fatalf("scan rank %d: %v != oracle %v", i, scan[i].Dist, dists[i])
		}
	}
}

// TestRangeBothSidesMatchesOracle does the same for range queries across
// all three execution strategies.
func TestRangeBothSidesMatchesOracle(t *testing.T) {
	db, data := newTestDB(t, 120, 23, Options{})
	q := data[4]
	tr := transform.MovingAverage(testLen, 20)
	eps := 1.0

	Q := tr.Apply(dft.TransformReal(series.NormalForm(q)))
	want := map[int]bool{}
	for i, x := range data {
		X := tr.Apply(dft.TransformReal(series.NormalForm(x)))
		if dft.Distance(X, Q) <= eps {
			want[i] = true
		}
	}
	if len(want) < 2 {
		t.Fatalf("test setup: expected planted neighbors, got %d", len(want))
	}
	rq := RangeQuery{Values: q, Eps: eps, Transform: tr, BothSides: true}
	for name, run := range map[string]func(RangeQuery) ([]Result, ExecStats, error){
		"indexed":  db.RangeIndexed,
		"scanFreq": db.RangeScanFreq,
		"scanTime": db.RangeScanTime,
	} {
		res, _, err := run(rq)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want) {
			t.Fatalf("%s: %d results, oracle %d", name, len(res), len(want))
		}
		for _, rr := range res {
			if !want[int(rr.ID)] {
				t.Fatalf("%s: unexpected result %d", name, rr.ID)
			}
		}
	}
}

func TestBothSidesIncompatibleWithWarp(t *testing.T) {
	db, _ := newTestDB(t, 10, 24, Options{})
	q := make([]float64, 2*testLen)
	_, _, err := db.RangeIndexed(RangeQuery{
		Values: q, Eps: 1, Transform: transform.Warp(testLen, 2), WarpFactor: 2, BothSides: true,
	})
	if err == nil {
		t.Fatal("BothSides + warp should be rejected")
	}
}

func TestRangeScanTimeWarp(t *testing.T) {
	db, data := newTestDB(t, 50, 25, Options{})
	q := series.Warp(data[3], 2)
	rq := RangeQuery{Values: q, Eps: 0.1, Transform: transform.Warp(testLen, 2), WarpFactor: 2}
	res, st, err := db.RangeScanTime(rq)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rr := range res {
		if rr.ID == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("time-domain warp scan missed the source series: %v", res)
	}
	if st.DistanceTerms == 0 || st.PageReads == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestForceTransformSameResults(t *testing.T) {
	db, data := newTestDB(t, 100, 26, Options{})
	q := data[0]
	plain, pStats, err := db.RangeIndexed(RangeQuery{Values: q, Eps: 2, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	forced, fStats, err := db.RangeIndexed(RangeQuery{Values: q, Eps: 2, Transform: transform.Identity(testLen), ForceTransform: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(forced) {
		t.Fatalf("forced transform changed results: %d vs %d", len(plain), len(forced))
	}
	// The Figure 8 invariant: identical node accesses either way.
	if pStats.NodeAccesses != fStats.NodeAccesses {
		t.Fatalf("node accesses differ: %d vs %d", pStats.NodeAccesses, fStats.NodeAccesses)
	}
}

func TestExecStatsPageAccounting(t *testing.T) {
	db, data := newTestDB(t, 80, 27, Options{})
	_, st, err := db.RangeScanFreq(RangeQuery{Values: data[0], Eps: 0.5, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	// A full freq-domain scan touches at least one page per record.
	if st.PageReads < int64(db.Len()) {
		t.Fatalf("scan read %d pages for %d records", st.PageReads, db.Len())
	}
	if st.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestJoinTwoSidedValidation(t *testing.T) {
	db, _ := newTestDB(t, 10, 28, Options{})
	if _, _, err := db.JoinTwoSided(-1, transform.Identity(testLen), transform.Identity(testLen)); err == nil {
		t.Error("negative eps should fail")
	}
	if _, _, err := db.JoinTwoSided(1, transform.Identity(5), transform.Identity(testLen)); err == nil {
		t.Error("short left transform should fail")
	}
	if _, _, err := db.JoinTwoSided(1, transform.Identity(testLen), transform.Identity(5)); err == nil {
		t.Error("short right transform should fail")
	}
}

func TestJoinTwoSidedIdentityMatchesSelfJoinD(t *testing.T) {
	db, _ := newTestDB(t, 60, 29, Options{})
	tr := transform.MovingAverage(testLen, 10)
	d, _, err := db.SelfJoin(1.2, tr, JoinIndexTransform)
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := db.JoinTwoSided(1.2, tr, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != len(two) {
		t.Fatalf("SelfJoin(d) found %d, JoinTwoSided(T, T) found %d", len(d), len(two))
	}
	key := func(p JoinPair) [2]int64 { return [2]int64{p.A, p.B} }
	set := map[[2]int64]bool{}
	for _, p := range d {
		set[key(p)] = true
	}
	for _, p := range two {
		if !set[key(p)] {
			t.Fatalf("pair %v missing from method d", p)
		}
	}
}

func TestAccessorsAndEmptyQueries(t *testing.T) {
	db, err := NewDB(testLen, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Index() == nil || db.Schema().K == 0 {
		t.Fatal("accessors broken")
	}
	q := make([]float64, testLen)
	for i := range q {
		q[i] = float64(i % 7)
	}
	res, _, err := db.RangeIndexed(RangeQuery{Values: q, Eps: 1, Transform: transform.Identity(testLen)})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty DB range: %v %v", res, err)
	}
	nn, _, err := db.NNIndexed(NNQuery{Values: q, K: 3, Transform: transform.Identity(testLen)})
	if err != nil || len(nn) != 0 {
		t.Fatalf("empty DB NN: %v %v", nn, err)
	}
	pairs, _, err := db.SelfJoin(1, transform.Identity(testLen), JoinIndexTransform)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty DB join: %v %v", pairs, err)
	}
	if _, err := db.Series(99); err == nil {
		t.Error("missing series should fail")
	}
	if _, ok := db.FeaturePoint(99); ok {
		t.Error("missing feature point should be absent")
	}
	if name := db.Name(99); name != "" {
		t.Errorf("missing name = %q", name)
	}
}

func TestNNIndexedPrunesHarderWithClusteredData(t *testing.T) {
	// The incremental refinement must stop long before verifying the whole
	// relation when close neighbors exist.
	db, data := newTestDB(t, 400, 30, Options{})
	_, st, err := db.NNIndexed(NNQuery{Values: data[0], K: 1, Transform: transform.Identity(testLen)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates > db.Len()/4 {
		t.Fatalf("NN verified %d of %d — pruning ineffective", st.Candidates, db.Len())
	}
}
