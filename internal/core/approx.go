package core

import (
	"math"
	"math/bits"

	"repro/internal/plan"
)

// Approximate query tier: early-stopping search under a guaranteed
// (1+delta) error bound, built from two sound ingredients.
//
// Lower bound (Lemma 1 / Parseval): the partial sum of squared
// coefficient differences over any prefix of the energy-ordered spectrum
// never exceeds the true squared distance. The exact paths already prune
// and abandon on it; the approximate tier additionally relaxes the NN
// traversal's continue test to LB^2*(1+delta)^2 > t^2, which skips only
// candidates whose true distance exceeds t/(1+delta) — so every reported
// i-th distance stays within (1+delta) of the exact i-th.
//
// Upper bound (residual energy): stored records are normal forms (mean 0,
// std 1), so by the unitary transform the stored spectrum's total energy
// is at most n. After accumulating r energy-ordered terms the unseen tail
// of A*X+B-Q has norm at most sufA(r)*sqrt(n - E_r) + sufBQ(r), where E_r
// is the prefix energy of X actually observed, sufA(r) = max over the
// tail of |a_f|, and sufBQ(r) the tail norm of (b - Q) — both precomputed
// at plan time for each checkpoint position (squared, in sufA2/sufBQ2). The multi-resolution ladder evaluates this bound at
// power-of-two checkpoints ("rungs"); when the bound proves what the
// query needs, verification stops without walking the remaining
// coefficients:
//
//   - range (APPROX delta): accept when UB <= (1+delta)*eps. Answers are
//     a superset of the exact answer set (nothing within eps is ever
//     dropped — rejection still requires LB > eps) and every member's
//     true distance is at most (1+delta)*eps. Dist carries the lower
//     bound, Bound the upper.
//   - NN: accept when UB <= (1+delta)*LB, offering UB as the candidate's
//     distance. Offered values lie in [D, (1+delta)D], abandoned or
//     skipped candidates certify t < (1+delta)D at the moment of
//     dismissal, and the shared threshold only tightens — together these
//     give reported_i <= (1+delta)*exact_i for every rank i.
//
// Delta == 0 takes the exact code path untouched (relaxSq == 1 multiplies
// through the traversal test as an IEEE identity and verification never
// routes here), which is what makes APPROX 0 byte-identical to exact.

// approx reports whether this plan runs the approximate tier.
func (p *rangePlan) approx() bool { return p.relaxSq > 1 }

// initApprox prepares the plan's approximate tier for a Delta > 0 query:
// the traversal relaxation and — for frequency-domain verification — the
// ladder's suffix precomputation. n is the store length (spectrum size).
// Warped queries verify exactly in the time domain, so only the
// relaxation applies there.
func (p *rangePlan) initApprox(n int) {
	d := p.q.Delta
	p.relax = 1 + d
	p.relaxSq = p.relax * p.relax
	if p.q.WarpFactor >= 2 || len(p.Q) == 0 {
		return
	}
	p.rung0 = defaultRung(n)
	p.energy = float64(n)
	// One backward pass, recording only at ladder checkpoint positions
	// (power-of-two suffix starts): the verification walk never reads the
	// suffix bound anywhere else, so the plan stores ~log2(n) values in
	// fixed arrays instead of two n-length tables — no allocation, and
	// both tables keep *squared* magnitudes so the pass runs without a
	// single sqrt or hypot (roots are taken at checkpoint use).
	maxA2, sumBQ := 0.0, 0.0
	for f := n - 1; f >= 0; f-- {
		ar, ai := real(p.a[f]), imag(p.a[f])
		if m := ar*ar + ai*ai; m > maxA2 {
			maxA2 = m
		}
		bq := p.b[f] - p.Q[f]
		sumBQ += real(bq)*real(bq) + imag(bq)*imag(bq)
		if f >= ladderStart && f&(f-1) == 0 {
			ord := bits.TrailingZeros(uint(f)) - ladderShift
			p.sufA2[ord] = maxA2
			p.sufBQ2[ord] = sumBQ
		}
	}
}

// ladderStart is the first verification ladder checkpoint (ladderShift
// its log2). Checkpoints cost a handful of flops, so the ladder always
// starts low and doubles: a workload whose residual energy collapses
// early (smooth or band-limited series) certifies at the earliest rung
// its bound allows, instead of walking to the planner's historical
// estimate — which would be self-fulfilling, since an accept at rung r
// observes exactly r terms and can never reveal that a smaller rung
// sufficed.
const (
	ladderStart = 8
	ladderShift = 3
)

// ladderRungs bounds the checkpoint count: rung ordinals index suffix
// stats for positions ladderStart << ord < n, so 40 ordinals cover any
// representable store length.
const ladderRungs = 40

// defaultRung is the cold estimate of the accepting rung: length/8
// rounded up to a power of two, at least 8 — the planner overrides it
// from measured resolve depths (plan.AttachApprox). The estimate feeds
// EXPLAIN's projected speedup and the reported Rung stat; the ladder
// itself always starts at ladderStart.
func defaultRung(n int) int {
	target := float64(n) / 8
	r := 8
	for float64(r) < target && r < n {
		r <<= 1
	}
	if r > n {
		r = n
	}
	return r
}

// verifyFreqApprox is the approximate tier's verification walk: the exact
// early-abandoning coefficient loop of viewTransformedWithinBuf with
// residual-energy upper-bound checks at ladder rungs. nnMode selects the
// accept rule (see the file comment). It returns the candidate's reported
// distance and its upper bound: for range answers dist is the lower bound
// at accept (exact distance on a full walk); for NN answers dist is the
// upper bound, which is what the top-k heap must order by for the
// guarantee to compose.
func (db *DB) verifyFreqApprox(p *rangePlan, ar *execArena, st *ExecStats, id int64, eps float64, nnMode bool) (within bool, dist, bound float64, err error) {
	var view specView
	if spec, ok := db.staleSpectrum(id); ok {
		view = specView{vec: spec}
	} else {
		pages, perr := db.freqRel.ViewPagesInto(id, ar.pages[:0])
		if perr != nil {
			return false, 0, 0, perr
		}
		ar.pages = pages
		// Conditional release: the stale branch above holds no pins.
		defer db.freqRel.ReleaseView(id)
		view = specView{pages: pages, ps: db.freqRel.PageSize()}
	}
	limit := eps * eps
	n := len(p.Q)
	next, ord := ladderStart, 0
	var sum, ex float64
	for f := 0; f < n; f++ {
		x := view.at(f)
		d := p.a[f]*x + p.b[f] - p.Q[f]
		sum += real(d)*real(d) + imag(d)*imag(d)
		if sum > limit {
			st.DistanceTerms += int64(f + 1)
			return false, 0, 0, nil
		}
		ex += real(x)*real(x) + imag(x)*imag(x)
		if f+1 == next && f+1 < n {
			next <<= 1
			tailE := p.energy - ex
			if tailE < 0 {
				tailE = 0
			}
			tail := math.Sqrt(p.sufA2[ord]*tailE) + math.Sqrt(p.sufBQ2[ord])
			ord++
			ubSq := sum + tail*tail
			if nnMode {
				if ubSq <= p.relaxSq*sum {
					ub := math.Sqrt(ubSq)
					st.DistanceTerms += int64(f + 1)
					st.EarlyAccepts++
					st.BoundTightSum += tightness(math.Sqrt(sum), ub)
					return ub <= eps, ub, ub, nil
				}
			} else if ub := math.Sqrt(ubSq); ub <= p.relax*eps {
				lb := math.Sqrt(sum)
				st.DistanceTerms += int64(f + 1)
				st.EarlyAccepts++
				st.BoundTightSum += tightness(lb, ub)
				return true, lb, ub, nil
			}
		}
	}
	st.DistanceTerms += int64(n)
	d := math.Sqrt(sum)
	return true, d, d, nil
}

// tightness is the realized quality of one early accept: LB/UB in (0, 1],
// 1 when the bound closed exactly on the true distance.
func tightness(lb, ub float64) float64 {
	if ub <= 0 {
		return 1
	}
	return lb / ub
}

// markApprox stamps an execution's stats with the tier it ran under (the
// four strategy run functions call it, so every entry point — planned,
// pinned, or fanned out per shard — reports its delta and rung).
func markApprox(p *rangePlan, st *ExecStats) {
	if p.approx() {
		st.Delta = p.q.Delta
		st.Rung = p.rung0
	}
}

// observeApprox feeds one approximate execution's realized behavior back
// to the planner: mean bound tightness, verified terms per candidate, and
// the traversal's candidate/node counts.
func observeApprox(tr *plan.Tracker, pl *plan.Plan, st *ExecStats, series int) {
	if pl.Approx == nil {
		return
	}
	tight := 1.0
	if st.EarlyAccepts > 0 {
		tight = st.BoundTightSum / float64(st.EarlyAccepts)
	}
	terms := 0.0
	if st.Candidates > 0 {
		terms = float64(st.DistanceTerms) / float64(st.Candidates)
	}
	tr.ObserveApprox(pl.Kind, tight, terms, st.Candidates, st.NodeAccesses, series)
}
