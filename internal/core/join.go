package core

import (
	"fmt"
	"math"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/transform"
)

// JoinMethod selects one of the four self-join strategies the paper
// compares in Table 1.
type JoinMethod int

const (
	// JoinScanNaive is method (a): scan the frequency-domain relation,
	// compare every sequence to all sequences after it, applying the
	// transformation during the comparison, with no early abandoning.
	JoinScanNaive JoinMethod = iota
	// JoinScanEarlyAbandon is method (b): as (a), but each distance
	// computation stops as soon as it exceeds eps.
	JoinScanEarlyAbandon
	// JoinIndexPlain is method (c): for every sequence build a search
	// rectangle and pose it to the index as a range query, with no
	// transformation. Each qualifying pair is reported twice (once from
	// each side), matching the paper's answer-set accounting.
	JoinIndexPlain
	// JoinIndexTransform is method (d): as (c), but the transformation is
	// applied to both the index and the search rectangles.
	JoinIndexTransform
)

func (m JoinMethod) String() string {
	switch m {
	case JoinScanNaive:
		return "a (seq scan)"
	case JoinScanEarlyAbandon:
		return "b (seq scan, early abandon)"
	case JoinIndexPlain:
		return "c (index, no transform)"
	case JoinIndexTransform:
		return "d (index, transform)"
	default:
		return fmt.Sprintf("JoinMethod(%d)", int(m))
	}
}

// JoinPair is one joined pair of series with its (transformed) distance.
type JoinPair struct {
	A, B int64
	Dist float64
}

// orderedPair normalizes an unordered scan-join answer so A < B by ID.
// Scan iteration order is arbitrary after deletes (swap-delete), so the
// emission side can no longer guarantee the direction; normalizing keeps
// scan-method output deterministic.
func orderedPair(a, b int64, dist float64) JoinPair {
	if a > b {
		a, b = b, a
	}
	return JoinPair{A: a, B: b, Dist: dist}
}

// JoinQuery describes one planned all-pairs query. A self join (TwoSided
// false, Left == Right) finds every unordered pair {x, y} of distinct
// stored series with D(T(nf(x)), T(nf(y))) <= Eps, reported once with
// A < B; the generalized two-sided join (Section 4) finds every ordered
// pair (x, y), x != y, with D(Left(nf(x)), Right(nf(y))) <= Eps.
//
// Planned joins are the strategy-free statement of the paper's Table 1
// experiment: every execution strategy — the nested scans and the
// index-nested-loop — answers a JoinQuery identically, so the planner
// chooses among them on cost alone. The method-pinned SelfJoin keeps the
// paper's exact per-method accounting (index methods report pairs twice,
// method c ignores the transformation).
type JoinQuery struct {
	Eps         float64
	Left, Right transform.T
	TwoSided    bool
}

// joinPlan is the query-side preprocessing of a planned join: both sides'
// affine index actions and energy-permuted spectrum coefficients. Like
// rangePlan it depends only on the shared schema and length, so a sharded
// execution computes one and reuses it across every shard.
//
// mapErr records a transformation with no affine action in this feature
// space (e.g. a translation in S_pol): the scans verify in the frequency
// domain and never need the maps, so such joins stay answerable — the
// planner just pins them to a scan and the index paths refuse.
type joinPlan struct {
	q      JoinQuery
	lm, rm transform.AffineMap
	mapErr error
	la, lb []complex128
	ra, rb []complex128
}

// planJoin validates q and builds its execution plan.
func (db *DB) planJoin(q JoinQuery) (*joinPlan, error) {
	if err := db.validateJoin(q.Eps, q.Left); err != nil {
		return nil, err
	}
	if err := db.validateJoin(q.Eps, q.Right); err != nil {
		return nil, err
	}
	jp := &joinPlan{q: q}
	jp.la, jp.lb = db.permuteTransform(q.Left)
	jp.ra, jp.rb = db.permuteTransform(q.Right)
	var err error
	if jp.lm, err = db.schema.Map(q.Left); err != nil {
		jp.mapErr = err
	} else if jp.rm, err = db.schema.Map(q.Right); err != nil {
		jp.mapErr = err
	}
	return jp, nil
}

// selfJoinQuery lifts a method-pinned self join's parameters into the
// planned vocabulary.
func selfJoinQuery(eps float64, t transform.T) JoinQuery {
	return JoinQuery{Eps: eps, Left: t, Right: t}
}

// SelfJoin finds all pairs (x, y) of distinct stored series with
// D(T(nf(x)), T(nf(y))) <= eps, using the given Table 1 method. Scan
// methods (a, b) report each unordered pair once; index methods (c, d)
// report each pair twice — the paper's Table 1 counts preserved exactly.
// Method (c) ignores the transformation by construction. For cost-based
// method selection use PlanJoin/ExecJoin instead.
func (db *DB) SelfJoin(eps float64, t transform.T, method JoinMethod) ([]JoinPair, ExecStats, error) {
	switch method {
	case JoinScanNaive:
		return db.selfJoinScan(eps, t, false)
	case JoinScanEarlyAbandon:
		return db.selfJoinScan(eps, t, true)
	case JoinIndexPlain:
		return db.selfJoinIndex(eps, transform.Identity(db.length))
	case JoinIndexTransform:
		return db.selfJoinIndex(eps, t)
	default:
		return nil, ExecStats{}, fmt.Errorf("core: unknown join method %d", method)
	}
}

// selfJoinScan implements methods (a) and (b): a nested scan over the
// frequency-domain relation. The outer record is fetched once per outer
// step; each inner record fetch is charged, mirroring the block-less
// nested-loop cost profile that made method (a) cost 20 minutes in the
// paper.
func (db *DB) selfJoinScan(eps float64, t transform.T, earlyAbandon bool) ([]JoinPair, ExecStats, error) {
	jp, err := db.planJoin(selfJoinQuery(eps, t))
	if err != nil {
		return nil, ExecStats{}, err
	}
	return db.execJoinTimed(jp, func(st *ExecStats) ([]JoinPair, error) {
		return db.joinScanInto(jp, earlyAbandon, st)
	})
}

// selfJoinIndex implements methods (c) and (d): an index-nested-loop join.
// For every stored series, its (transformed) feature point becomes a range
// query against the (transformed) index; candidates verify against full
// records. Pairs are emitted in both directions, and self-matches are
// skipped.
func (db *DB) selfJoinIndex(eps float64, t transform.T) ([]JoinPair, ExecStats, error) {
	jp, err := db.planJoin(selfJoinQuery(eps, t))
	if err != nil {
		return nil, ExecStats{}, err
	}
	if jp.mapErr != nil {
		return nil, ExecStats{}, jp.mapErr
	}
	return db.execJoinTimed(jp, func(st *ExecStats) ([]JoinPair, error) {
		return db.joinIndexInto(jp, false, st)
	})
}

// JoinTwoSided finds all ordered pairs (x, y), x != y, with
// D(L(nf(x)), R(nf(y))) <= eps: the generalized all-pairs query of
// Section 4 where both join sides carry (possibly different)
// transformations — e.g. L = mavg20 ∘ reverse, R = mavg20 expresses
// Example 2.2's "stocks moving opposite to each other". The index side
// evaluates L on the fly; the probe side applies R to each query point.
func (db *DB) JoinTwoSided(eps float64, left, right transform.T) ([]JoinPair, ExecStats, error) {
	jp, err := db.planJoin(JoinQuery{Eps: eps, Left: left, Right: right, TwoSided: true})
	if err != nil {
		return nil, ExecStats{}, err
	}
	if jp.mapErr != nil {
		return nil, ExecStats{}, jp.mapErr
	}
	return db.execJoinTimed(jp, func(st *ExecStats) ([]JoinPair, error) {
		return db.joinIndexInto(jp, false, st)
	})
}

// execJoinTimed wraps a join body with the shared timing, sorting, and
// page-read accounting.
func (db *DB) execJoinTimed(jp *joinPlan, run func(*ExecStats) ([]JoinPair, error)) ([]JoinPair, ExecStats, error) {
	var st ExecStats
	timer := stats.StartTimer()
	reads0 := db.pageReads()
	out, err := run(&st)
	searchD := timer.Elapsed()
	if err != nil {
		return nil, st, err
	}
	mergeT := stats.StartTimer()
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Spans = []Span{span("search", searchD), span("merge", mergeT.Elapsed())}
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// joinScanInto runs the nested scan over the frequency-domain relation:
// every unordered pair of stored series is compared once, with (method b)
// or without (method a) early abandoning. Self joins emit the pair's
// single D(T x, T y) comparison; two-sided joins verify both orientations
// — D(L x_i, R x_j) for pair (i, j) and D(L x_j, R x_i) for (j, i) — so
// the scan answers exactly what the index-nested-loop answers.
func (db *DB) joinScanInto(jp *joinPlan, earlyAbandon bool, st *ExecStats) ([]JoinPair, error) {
	limit := jp.q.Eps * jp.q.Eps
	n := len(db.ids)
	var out []JoinPair
	for i := 0; i < n; i++ {
		X, err := db.spectrum(db.ids[i])
		if err != nil {
			return nil, err
		}
		lx := make([]complex128, len(X))
		for f := range X {
			lx[f] = jp.la[f]*X[f] + jp.lb[f]
		}
		var rx []complex128
		if jp.q.TwoSided {
			rx = make([]complex128, len(X))
			for f := range X {
				rx[f] = jp.ra[f]*X[f] + jp.rb[f]
			}
		}
		for j := i + 1; j < n; j++ {
			view, err := db.specViewOf(db.ids[j])
			if err != nil {
				return nil, err
			}
			if !jp.q.TwoSided {
				// One comparison per unordered pair: D(T x_i, T x_j).
				st.Candidates++
				sum, terms, ok := scanPairDist(lx, jp.la, jp.lb, view, limit, earlyAbandon)
				st.DistanceTerms += int64(terms)
				if ok && sum <= limit {
					out = append(out, orderedPair(db.ids[i], db.ids[j], math.Sqrt(sum)))
				}
				db.releaseSpecView(db.ids[j], view)
				continue
			}
			// Ordered pair (i, j): D(L x_i, R x_j).
			st.Candidates++
			sum, terms, ok := scanPairDist(lx, jp.ra, jp.rb, view, limit, earlyAbandon)
			st.DistanceTerms += int64(terms)
			if ok && sum <= limit {
				out = append(out, JoinPair{A: db.ids[i], B: db.ids[j], Dist: math.Sqrt(sum)})
			}
			// Ordered pair (j, i): D(L x_j, R x_i).
			st.Candidates++
			sum, terms, ok = scanPairDist(rx, jp.la, jp.lb, view, limit, earlyAbandon)
			st.DistanceTerms += int64(terms)
			if ok && sum <= limit {
				out = append(out, JoinPair{A: db.ids[j], B: db.ids[i], Dist: math.Sqrt(sum)})
			}
			db.releaseSpecView(db.ids[j], view)
		}
	}
	return out, nil
}

// scanPairDist accumulates the squared distance between a precomputed
// transformed outer spectrum and the inner record's coefficients mapped
// through (a, b), abandoning past limit when earlyAbandon is set. ok is
// false only on abandonment, so sum <= limit decides membership exactly
// as the index verifier does.
func scanPairDist(outer, a, b []complex128, view specView, limit float64, earlyAbandon bool) (sum float64, terms int, ok bool) {
	for f := range outer {
		y := view.at(f)
		d := outer[f] - (a[f]*y + b[f])
		sum += real(d)*real(d) + imag(d)*imag(d)
		terms++
		if earlyAbandon && sum > limit {
			return sum, terms, false
		}
	}
	return sum, terms, true
}

// joinIndexInto runs the index-nested-loop join: every stored series, its
// right-transformed feature point posed to the left-transformed index as
// a range query, candidates verified against full records. selfOnce emits
// each unordered pair exactly once — from its lower-ID probe, skipping
// higher-to-lower candidates before verification, which also halves the
// verification work versus the paper's twice-reporting methods c/d.
func (db *DB) joinIndexInto(jp *joinPlan, selfOnce bool, st *ExecStats) ([]JoinPair, error) {
	var out []JoinPair
	for _, qid := range db.ids {
		qp := db.points[qid]
		tq := qp
		if !jp.rm.Identity() {
			tq = jp.rm.ApplyPoint(qp)
		}
		QX, err := db.spectrum(qid)
		if err != nil {
			return nil, err
		}
		tQ := make([]complex128, len(QX))
		for f := range QX {
			tQ[f] = jp.ra[f]*QX[f] + jp.rb[f]
		}
		cands, searchStats := db.idx.Range(tq, jp.q.Eps, jp.lm, feature.MomentBounds{}, !db.opts.DisablePartialPrune)
		st.NodeAccesses += searchStats.NodesVisited
		for _, c := range cands {
			if c.ID == qid {
				continue
			}
			if selfOnce && c.ID < qid {
				continue
			}
			st.Candidates++
			within, dist, terms, err := db.viewTransformedWithin(c.ID, jp.la, jp.lb, tQ, jp.q.Eps)
			if err != nil {
				return nil, err
			}
			st.DistanceTerms += int64(terms)
			if within {
				if jp.q.TwoSided {
					out = append(out, JoinPair{A: c.ID, B: qid, Dist: dist})
				} else {
					out = append(out, JoinPair{A: qid, B: c.ID, Dist: dist})
				}
			}
		}
	}
	return out, nil
}

func (db *DB) validateJoin(eps float64, t transform.T) error {
	if eps < 0 {
		return fmt.Errorf("core: negative eps %g", eps)
	}
	if t.Dims() != db.length {
		return fmt.Errorf("core: transformation %s spans %d coefficients, DB length is %d", t, t.Dims(), db.length)
	}
	return nil
}

// JoinPrefilter is the dependency geometry of a cached join answer: the
// join's transformed store extents at caching time, against which a
// committed write's feature point is tested. A new or moved series could
// change the join only if some stored series lies within eps of it in the
// full spectra, which by Lemma 1 requires the stored side's transformed
// extent to intersect the eps search rectangle around the written point —
// a miss soundly proves the cached answer unchanged. Retained points are
// absorbed into the extents, so two consecutive far-away writes that are
// close to each other still evict.
//
// Hit mutates the extents and must be externally serialized (the server
// calls it under its cache-invalidation lock).
type JoinPrefilter struct {
	schema   feature.Schema
	angular  []bool
	lm, rm   transform.AffineMap
	eps      float64
	twoSided bool
	lB, rB   geom.Rect // left-/right-transformed store extents
	// absorbed counts the write points folded into the extents since the
	// prefilter was built or last retagged. Each absorption can only grow
	// the extents, so a long-lived entry under scattered writes drifts
	// toward hitting on everything; the server watches this counter and
	// calls Retag to re-anchor the geometry to the store's real bounds.
	absorbed int
}

func newJoinPrefilter(schema feature.Schema, jp *joinPlan, bounds geom.Rect) *JoinPrefilter {
	return &JoinPrefilter{
		schema:   schema,
		angular:  schema.Angular(),
		lm:       jp.lm,
		rm:       jp.rm,
		eps:      jp.q.Eps,
		twoSided: jp.q.TwoSided,
		lB:       applyBounds(bounds, jp.lm).Clone(),
		rB:       applyBounds(bounds, jp.rm).Clone(),
	}
}

// JoinPrefilter builds the cached-join invalidation geometry for q.
func (db *DB) JoinPrefilter(q JoinQuery) (*JoinPrefilter, error) {
	jp, err := db.planJoin(q)
	if err != nil {
		return nil, err
	}
	if jp.mapErr != nil {
		return nil, jp.mapErr
	}
	return newJoinPrefilter(db.schema, jp, db.idx.Tree().Bounds()), nil
}

// JoinPrefilter builds the cached-join invalidation geometry across all
// shards (the union of the shard extents).
func (s *Sharded) JoinPrefilter(q JoinQuery) (*JoinPrefilter, error) {
	jp, err := s.shards[0].planJoin(q)
	if err != nil {
		return nil, err
	}
	if jp.mapErr != nil {
		return nil, jp.mapErr
	}
	bounds, _ := s.featureBounds()
	return newJoinPrefilter(s.Schema(), jp, bounds), nil
}

// Hit reports whether a series committed at feature point pt could pair
// with any series inside the tracked extents. On a miss the point is
// absorbed into the extents — the written series is now part of the
// store the cached answer must be defended against.
func (p *JoinPrefilter) Hit(pt geom.Point) bool {
	rp := pt
	if !p.rm.Identity() {
		rp = p.rm.ApplyPoint(pt)
	}
	// The written series on the probe (right) side against stored
	// left-side points.
	if p.rectHit(rp, p.lB) {
		return true
	}
	lp := rp
	if p.twoSided {
		lp = pt
		if !p.lm.Identity() {
			lp = p.lm.ApplyPoint(pt)
		}
		// And on the left side against stored right-side points.
		if p.rectHit(lp, p.rB) {
			return true
		}
	}
	absorb(&p.lB, lp)
	absorb(&p.rB, rp)
	p.absorbed++
	return false
}

// Absorbed returns the number of write points folded into the extents
// since construction or the last Retag.
func (p *JoinPrefilter) Absorbed() int { return p.absorbed }

// Retag re-anchors the extents to the store's current feature bounds
// (Engine.FeatureBounds), discarding the absorbed write points. The
// absorbed points are live series by the time Retag runs, so the store's
// own MBR covers them — the swap is sound and strictly tighter than the
// accumulated union, which never shrinks on deletes or re-anchors on
// updates. Like Hit, Retag mutates the extents and must be externally
// serialized.
func (p *JoinPrefilter) Retag(bounds geom.Rect) {
	p.lB = applyBounds(bounds, p.lm).Clone()
	p.rB = applyBounds(bounds, p.rm).Clone()
	p.absorbed = 0
}

func (p *JoinPrefilter) rectHit(q geom.Point, bounds geom.Rect) bool {
	if bounds.Dims() == 0 {
		return false // empty store: nothing to pair with
	}
	rect := p.schema.SearchRect(q, p.eps, feature.MomentBounds{})
	return geom.IntersectsMixed(rect, bounds, p.angular)
}

// absorb grows a (possibly empty) extent to cover p.
func absorb(b *geom.Rect, p geom.Point) {
	if b.Dims() == 0 {
		*b = geom.Rect{Lo: p.Clone(), Hi: p.Clone()}
		return
	}
	b.UnionInPlace(geom.PointRect(p))
}

// applyBounds maps a store's feature-space MBR through an affine index
// action (the zero rect of an empty store passes through).
func applyBounds(b geom.Rect, m transform.AffineMap) geom.Rect {
	if b.Dims() == 0 || m.Identity() {
		return b
	}
	return m.ApplyRect(b)
}

// joinSampleCap bounds the stored series sampled as probes when
// estimating a join's per-probe selectivity.
const joinSampleCap = 8

// joinSelectivity estimates the average fraction of stored feature points
// falling in one probe's eps search rectangle: up to joinSampleCap stored
// series, evenly spaced over the sorted ID list, become probes; each is
// transformed through the right-side action and priced with the planner's
// geometric model against the left-transformed store extent — the same
// rectangle-vs-extent comparison the index traversal performs.
func joinSelectivity(ids []int64, point func(int64) (geom.Point, bool), schema feature.Schema, jp *joinPlan, bounds geom.Rect, series int) float64 {
	if len(ids) == 0 {
		return 0
	}
	step := len(ids) / joinSampleCap
	if step < 1 {
		step = 1
	}
	sum, cnt := 0.0, 0
	angular := schema.Angular()
	for i := 0; i < len(ids) && cnt < joinSampleCap; i += step {
		p, ok := point(ids[i])
		if !ok {
			continue
		}
		tq := p
		if !jp.rm.Identity() {
			tq = jp.rm.ApplyPoint(p)
		}
		sum += plan.Selectivity(plan.Input{
			Series:  series,
			Rect:    schema.SearchRect(tq, jp.q.Eps, feature.MomentBounds{}),
			Bounds:  bounds,
			Angular: angular,
		})
		cnt++
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// buildJoinPlan resolves the join method for a validated planned join.
// want plan.Auto lets the planner choose among the Table 1 methods on
// cost; anything else forces the corresponding mechanism (answers are
// identical under every choice — canonical once-per-pair self joins,
// ordered-pair two-sided joins).
func buildJoinPlan(q JoinQuery, jp *joinPlan, want plan.Strategy, in plan.JoinInput, tr *plan.Tracker, shards []int) *plan.Plan {
	choice, est, reason := plan.ChooseJoin(in, tr)
	kind, tstr := "selfjoin", q.Left.String()
	if q.TwoSided {
		kind, tstr = "join", q.Left.String()+" / "+q.Right.String()
	}
	pl := &plan.Plan{
		Kind:      kind,
		Transform: tstr,
		Eps:       q.Eps,
		Strategy:  choice,
		Method:    plan.JoinMethodLetter(choice, in.Identity),
		Reason:    reason,
		Shards:    shards,
		Est:       est,
		Internal:  jp,
	}
	if want != plan.Auto {
		pl.Forced = true
		pl.Strategy = want
		pl.Method = plan.JoinMethodLetter(want, in.Identity)
		pl.Reason = fmt.Sprintf("forced %v (method %s) by caller; planner would pick %v (%s)", want, pl.Method, choice, reason)
	}
	return pl
}

// scanOnlyJoinPlan builds the plan of a join whose transformation has no
// affine index action: the scans still answer it, so the planner pins
// method b (or the forced scan) and only a forced index is an error.
func scanOnlyJoinPlan(q JoinQuery, jp *joinPlan, want plan.Strategy, series int, shards []int) (*plan.Plan, error) {
	if want == plan.Index {
		return nil, jp.mapErr
	}
	kind, tstr := "selfjoin", q.Left.String()
	if q.TwoSided {
		kind, tstr = "join", q.Left.String()+" / "+q.Right.String()
	}
	pl := &plan.Plan{
		Kind:      kind,
		Transform: tstr,
		Eps:       q.Eps,
		Strategy:  plan.ScanFreq,
		Method:    "b",
		Reason:    fmt.Sprintf("scan method b: index unavailable (%v)", jp.mapErr),
		Shards:    shards,
		Est:       plan.Estimate{Series: series},
		Internal:  jp,
	}
	if want != plan.Auto {
		pl.Forced = true
		pl.Strategy = want
		pl.Method = plan.JoinMethodLetter(want, false)
	}
	return pl, nil
}

// PlanJoin validates an all-pairs query and builds its execution plan,
// pricing the paper's Table 1 methods from store cardinality, sampled eps
// selectivity against the transformed store extent, and measured join
// feedback; want plan.Auto defers the method choice to the planner.
func (db *DB) PlanJoin(q JoinQuery, want plan.Strategy) (*plan.Plan, error) {
	jp, err := db.planJoin(q)
	if err != nil {
		return nil, err
	}
	if jp.mapErr != nil {
		return scanOnlyJoinPlan(q, jp, want, db.Len(), plan.AllShards(1))
	}
	bounds := applyBounds(db.idx.Tree().Bounds(), jp.lm)
	sel := joinSelectivity(db.IDs(), db.FeaturePoint, db.schema, jp, bounds, db.Len())
	in := plan.JoinInput{
		Series:      db.Len(),
		Height:      db.idx.Tree().Height(),
		LeafCap:     db.opts.RTree.MaxEntries,
		Selectivity: sel,
		TwoSided:    q.TwoSided,
		Identity:    jp.lm.Identity() && jp.rm.Identity(),
	}
	return buildJoinPlan(q, jp, want, in, db.tracker, plan.AllShards(1)), nil
}

// joinPlanOf recovers the engine-side precomputation from a plan,
// replanning when the plan came from elsewhere.
func (db *DB) joinPlanOf(q JoinQuery, pl *plan.Plan) (*joinPlan, error) {
	if jp, ok := pl.Internal.(*joinPlan); ok && jp != nil {
		return jp, nil
	}
	return db.planJoin(q)
}

// ExecJoin executes a plan built by PlanJoin, feeding measured candidate
// counts back to the join calibrator after indexed executions and
// recording the executed plan in the store's history ring.
func (db *DB) ExecJoin(q JoinQuery, pl *plan.Plan) ([]JoinPair, ExecStats, error) {
	jp, err := db.joinPlanOf(q, pl)
	if err != nil {
		return nil, ExecStats{}, err
	}
	out, st, err := db.execJoinTimed(jp, func(st *ExecStats) ([]JoinPair, error) {
		switch pl.Strategy {
		case plan.Index:
			if jp.mapErr != nil {
				return nil, jp.mapErr
			}
			return db.joinIndexInto(jp, !jp.q.TwoSided, st)
		case plan.ScanFreq:
			return db.joinScanInto(jp, true, st)
		case plan.ScanTime:
			return db.joinScanInto(jp, false, st)
		default:
			return nil, fmt.Errorf("core: plan carries unresolved strategy %v", pl.Strategy)
		}
	})
	if err != nil {
		return nil, st, err
	}
	if pl.Strategy == plan.Index {
		db.tracker.ObserveJoin(pl.Est.Candidates, st.Candidates, st.NodeAccesses, db.Len())
	}
	db.maybeExploreJoin(pl, jp)
	db.history.Observe(pl, st.Candidates, st.NodeAccesses, st.Results, st.Elapsed)
	finishExec(pl, &st, st.Spans)
	return out, st, nil
}

// joinExploreEvery is the sampling period of the planner's join
// exploration probes: every joinExploreEvery-th unforced scan-routed join
// re-measures the index side with sampled count-only probes.
const joinExploreEvery = 8

// maybeExploreJoin occasionally probes the index after scan-routed joins.
// Like maybeExploreRange, this keeps the join calibration learning while
// scans win the pricing: up to joinSampleCap stored series (evenly spaced
// over the live set) pose their transformed feature points to the index
// as count-only range probes, and the scaled candidate and node counts
// feed the join calibrator. Probe costs stay out of the join's ExecStats
// — planner bookkeeping, not answer work.
func (db *DB) maybeExploreJoin(pl *plan.Plan, jp *joinPlan) {
	if pl.Strategy == plan.Index || pl.Forced || jp.mapErr != nil {
		return
	}
	if db.joinExploreTick.Add(1)%joinExploreEvery != 0 {
		return
	}
	n := len(db.ids)
	if n < 2 {
		return
	}
	step := n / joinSampleCap
	if step < 1 {
		step = 1
	}
	cand, nodes, probes := 0, 0, 0
	for i := 0; i < n && probes < joinSampleCap; i += step {
		qid := db.ids[i]
		tq := db.points[qid]
		if !jp.rm.Identity() {
			tq = jp.rm.ApplyPoint(tq)
		}
		cands, searchStats := db.idx.Range(tq, jp.q.Eps, jp.lm, feature.MomentBounds{}, !db.opts.DisablePartialPrune)
		nodes += searchStats.NodesVisited
		for _, c := range cands {
			if c.ID != qid {
				cand++
			}
		}
		probes++
	}
	if probes == 0 {
		return
	}
	// Scale the sample to a full index-nested-loop run: n probes instead
	// of `probes`. Self joins verify each unordered pair once, so their
	// candidate count halves.
	scale := float64(n) / float64(probes)
	scaledCand := float64(cand) * scale
	if !jp.q.TwoSided {
		scaledCand /= 2
	}
	db.tracker.ObserveJoin(pl.Est.Candidates, int(scaledCand), int(float64(nodes)*scale), n)
}
