package core

import (
	"fmt"
	"math"

	"repro/internal/feature"
	"repro/internal/stats"
	"repro/internal/transform"
)

// JoinMethod selects one of the four self-join strategies the paper
// compares in Table 1.
type JoinMethod int

const (
	// JoinScanNaive is method (a): scan the frequency-domain relation,
	// compare every sequence to all sequences after it, applying the
	// transformation during the comparison, with no early abandoning.
	JoinScanNaive JoinMethod = iota
	// JoinScanEarlyAbandon is method (b): as (a), but each distance
	// computation stops as soon as it exceeds eps.
	JoinScanEarlyAbandon
	// JoinIndexPlain is method (c): for every sequence build a search
	// rectangle and pose it to the index as a range query, with no
	// transformation. Each qualifying pair is reported twice (once from
	// each side), matching the paper's answer-set accounting.
	JoinIndexPlain
	// JoinIndexTransform is method (d): as (c), but the transformation is
	// applied to both the index and the search rectangles.
	JoinIndexTransform
)

func (m JoinMethod) String() string {
	switch m {
	case JoinScanNaive:
		return "a (seq scan)"
	case JoinScanEarlyAbandon:
		return "b (seq scan, early abandon)"
	case JoinIndexPlain:
		return "c (index, no transform)"
	case JoinIndexTransform:
		return "d (index, transform)"
	default:
		return fmt.Sprintf("JoinMethod(%d)", int(m))
	}
}

// JoinPair is one joined pair of series with its (transformed) distance.
type JoinPair struct {
	A, B int64
	Dist float64
}

// orderedPair normalizes an unordered scan-join answer so A < B by ID.
// Scan iteration order is arbitrary after deletes (swap-delete), so the
// emission side can no longer guarantee the direction; normalizing keeps
// scan-method output deterministic.
func orderedPair(a, b int64, dist float64) JoinPair {
	if a > b {
		a, b = b, a
	}
	return JoinPair{A: a, B: b, Dist: dist}
}

// SelfJoin finds all pairs (x, y) of distinct stored series with
// D(T(nf(x)), T(nf(y))) <= eps, using the given Table 1 method. Scan
// methods (a, b) report each unordered pair once; index methods (c, d)
// report each pair twice — the paper's Table 1 counts preserved exactly.
// Method (c) ignores the transformation by construction.
func (db *DB) SelfJoin(eps float64, t transform.T, method JoinMethod) ([]JoinPair, ExecStats, error) {
	switch method {
	case JoinScanNaive:
		return db.selfJoinScan(eps, t, false)
	case JoinScanEarlyAbandon:
		return db.selfJoinScan(eps, t, true)
	case JoinIndexPlain:
		return db.selfJoinIndex(eps, transform.Identity(db.length))
	case JoinIndexTransform:
		return db.selfJoinIndex(eps, t)
	default:
		return nil, ExecStats{}, fmt.Errorf("core: unknown join method %d", method)
	}
}

// selfJoinScan implements methods (a) and (b): a nested scan over the
// frequency-domain relation. The outer record is fetched once per outer
// step; each inner record fetch is charged, mirroring the block-less
// nested-loop cost profile that made method (a) cost 20 minutes in the
// paper.
func (db *DB) selfJoinScan(eps float64, t transform.T, earlyAbandon bool) ([]JoinPair, ExecStats, error) {
	var st ExecStats
	if err := db.validateJoin(eps, t); err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()
	a, b := db.permuteTransform(t)
	limit := eps * eps

	var out []JoinPair
	n := len(db.ids)
	for i := 0; i < n; i++ {
		X, err := db.spectrum(db.ids[i])
		if err != nil {
			return nil, st, err
		}
		tx := make([]complex128, len(X))
		for f := range X {
			tx[f] = a[f]*X[f] + b[f]
		}
		for j := i + 1; j < n; j++ {
			view, err := db.specViewOf(db.ids[j])
			if err != nil {
				return nil, st, err
			}
			st.Candidates++
			var sum float64
			terms := 0
			abandoned := false
			for f := range tx {
				y := view.at(f)
				d := tx[f] - (a[f]*y + b[f])
				sum += real(d)*real(d) + imag(d)*imag(d)
				terms++
				if earlyAbandon && sum > limit {
					abandoned = true
					break
				}
			}
			st.DistanceTerms += int64(terms)
			if !abandoned && sum <= limit {
				out = append(out, orderedPair(db.ids[i], db.ids[j], math.Sqrt(sum)))
			}
		}
	}
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// selfJoinIndex implements methods (c) and (d): an index-nested-loop join.
// For every stored series, its (transformed) feature point becomes a range
// query against the (transformed) index; candidates verify against full
// records. Pairs are emitted in both directions, and self-matches are
// skipped.
func (db *DB) selfJoinIndex(eps float64, t transform.T) ([]JoinPair, ExecStats, error) {
	var st ExecStats
	if err := db.validateJoin(eps, t); err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	m, err := db.schema.Map(t)
	if err != nil {
		return nil, st, err
	}
	a, b := db.permuteTransform(t)
	limit := eps

	var out []JoinPair
	for _, qid := range db.ids {
		qp := db.points[qid]
		tq := qp
		if !m.Identity() {
			tq = m.ApplyPoint(qp)
		}
		QX, err := db.spectrum(qid)
		if err != nil {
			return nil, st, err
		}
		tQ := make([]complex128, len(QX))
		for f := range QX {
			tQ[f] = a[f]*QX[f] + b[f]
		}
		cands, searchStats := db.idx.Range(tq, eps, m, feature.MomentBounds{}, !db.opts.DisablePartialPrune)
		st.NodeAccesses += searchStats.NodesVisited
		for _, c := range cands {
			if c.ID == qid {
				continue
			}
			st.Candidates++
			within, dist, terms, err := db.viewTransformedWithin(c.ID, a, b, tQ, limit)
			if err != nil {
				return nil, st, err
			}
			st.DistanceTerms += int64(terms)
			if within {
				out = append(out, JoinPair{A: qid, B: c.ID, Dist: dist})
			}
		}
	}
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// JoinTwoSided finds all ordered pairs (x, y), x != y, with
// D(L(nf(x)), R(nf(y))) <= eps: the generalized all-pairs query of
// Section 4 where both join sides carry (possibly different)
// transformations — e.g. L = mavg20 ∘ reverse, R = mavg20 expresses
// Example 2.2's "stocks moving opposite to each other". The index side
// evaluates L on the fly; the probe side applies R to each query point.
func (db *DB) JoinTwoSided(eps float64, left, right transform.T) ([]JoinPair, ExecStats, error) {
	var st ExecStats
	if err := db.validateJoin(eps, left); err != nil {
		return nil, st, err
	}
	if err := db.validateJoin(eps, right); err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	lm, err := db.schema.Map(left)
	if err != nil {
		return nil, st, err
	}
	rm, err := db.schema.Map(right)
	if err != nil {
		return nil, st, err
	}
	la, lb := db.permuteTransform(left)
	ra, rb := db.permuteTransform(right)

	var out []JoinPair
	for _, qid := range db.ids {
		qp := db.points[qid]
		tq := qp
		if !rm.Identity() {
			tq = rm.ApplyPoint(qp)
		}
		QX, err := db.spectrum(qid)
		if err != nil {
			return nil, st, err
		}
		tQ := make([]complex128, len(QX))
		for f := range QX {
			tQ[f] = ra[f]*QX[f] + rb[f]
		}
		cands, searchStats := db.idx.Range(tq, eps, lm, feature.MomentBounds{}, !db.opts.DisablePartialPrune)
		st.NodeAccesses += searchStats.NodesVisited
		for _, c := range cands {
			if c.ID == qid {
				continue
			}
			st.Candidates++
			within, dist, terms, err := db.viewTransformedWithin(c.ID, la, lb, tQ, eps)
			if err != nil {
				return nil, st, err
			}
			st.DistanceTerms += int64(terms)
			if within {
				out = append(out, JoinPair{A: c.ID, B: qid, Dist: dist})
			}
		}
	}
	sortPairs(out)
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

func (db *DB) validateJoin(eps float64, t transform.T) error {
	if eps < 0 {
		return fmt.Errorf("core: negative eps %g", eps)
	}
	if t.Dims() != db.length {
		return fmt.Errorf("core: transformation %s spans %d coefficients, DB length is %d", t, t.Dims(), db.length)
	}
	return nil
}
