package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
	"repro/internal/transform"
)

// NNQuery describes a k-nearest-neighbor query under a transformation: the
// k stored series minimizing D(T(nf(x)), nf(q)), or
// D(T(nf(x)), T(nf(q))) when BothSides is set.
type NNQuery struct {
	Values     []float64
	K          int
	Transform  transform.T
	WarpFactor int
	BothSides  bool
	// Delta is the approximate tier's guaranteed relative error bound
	// (APPROX delta): 0 answers exactly; delta > 0 relaxes the
	// branch-and-bound's continue test and lets verification stop at a
	// ladder rung, guaranteeing every reported i-th distance is within
	// (1+Delta) of the exact i-th. See approx.go.
	Delta float64
	// Prep carries the stored-record planning artifacts when the query
	// series is itself a stored series; see RangeQuery.Prep.
	Prep *QueryPrep
}

// topK is the current k-best set of a nearest-neighbor search, safe for
// concurrent use. A single-DB search owns one privately (usually an
// arena's); a sharded search shares one instance across all shard workers,
// so every worker prunes against the globally best k-th distance and
// sharding does not inflate candidate counts.
//
// The set is a typed max-heap of Results under the (Dist, ID) total
// order: the root is the worst of the current k best, so it is the first
// to be displaced. Breaking distance ties by ID makes the retained k-set
// — and therefore NN output — independent of candidate arrival order.
// (Typed sift functions rather than container/heap: the interface-based
// heap boxes every Result it pushes, which the zero-allocation hot path
// cannot afford.)
type topK struct {
	mu sync.Mutex
	k  int
	h  []Result
}

func newTopK(k int) *topK { return &topK{k: k} }

// reset reinitializes a (possibly pooled) set for a fresh search of k
// neighbors, keeping the heap's capacity.
func (t *topK) reset(k int) {
	t.mu.Lock()
	t.k = k
	t.h = t.h[:0]
	t.mu.Unlock()
}

// siftUp restores the max-heap order after appending at index i.
func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultLess(t.h[parent], t.h[i]) {
			return
		}
		t.h[parent], t.h[i] = t.h[i], t.h[parent]
		i = parent
	}
}

// siftDown restores the max-heap order after replacing the root.
func (t *topK) siftDown(i int) {
	n := len(t.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && resultLess(t.h[big], t.h[r]) {
			big = r
		}
		if !resultLess(t.h[i], t.h[big]) {
			return
		}
		t.h[i], t.h[big] = t.h[big], t.h[i]
		i = big
	}
}

// threshold returns the current k-th best distance, or +Inf while the set
// is still filling. Verification may use it as an early-abandoning bound;
// it only ever tightens.
func (t *topK) threshold() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].Dist
}

// offer admits r if it beats the current worst of the k best under the
// (Dist, ID) order.
func (t *topK) offer(r Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.h) < t.k {
		t.h = append(t.h, r)
		t.siftUp(len(t.h) - 1)
		return
	}
	if resultLess(r, t.h[0]) {
		t.h[0] = r
		t.siftDown(0)
	}
}

// appendResults appends the final k best to dst and sorts dst ascending by
// (Dist, ID). dst must carry only this search's answers (pass a [:0]
// slice to reuse its backing array).
func (t *topK) appendResults(dst []Result) []Result {
	t.mu.Lock()
	dst = append(dst, t.h...)
	t.mu.Unlock()
	sortResults(dst)
	return dst
}

// results returns the final k best, sorted ascending by (Dist, ID).
func (t *topK) results() []Result {
	return t.appendResults(nil)
}

// planNN validates q and builds the plan of its equivalent open-threshold
// range query.
func planNN(db *DB, q NNQuery) (*rangePlan, error) {
	if q.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", q.K)
	}
	rq := RangeQuery{Values: q.Values, Eps: math.Inf(1), Transform: q.Transform, WarpFactor: q.WarpFactor, BothSides: q.BothSides, Delta: q.Delta, Prep: q.Prep}
	return db.planRange(rq)
}

// nnVisit is the FlatNNVisitor of a batch nearest-neighbor execution: the
// per-candidate refinement step of the branch-and-bound, held in the
// arena so handing it to the traversal as an interface never allocates.
type nnVisit struct {
	db   *DB
	p    *rangePlan
	best *topK
	ar   *execArena
	st   *ExecStats
	warp bool
	err  error
}

func (v *nnVisit) VisitNear(id int64, partialDistSq float64) bool {
	// eps is the shared k-th-best distance: it bounds both the decision
	// to continue the traversal and the early abandoning inside
	// verification. +Inf while the k-set is filling. The approximate
	// tier relaxes the continue test by (1+delta)^2: a skipped candidate
	// then certifies eps < (1+delta)*D, which keeps every reported rank
	// within the (1+delta) guarantee. relaxSq is exactly 1 on exact
	// plans, so the multiplication is an IEEE identity there.
	eps := v.best.threshold()
	if partialDistSq*v.p.relaxSq > eps*eps {
		return false // no remaining candidate can beat the k-th best
	}
	v.st.Candidates++
	var (
		within      bool
		dist, bound float64
		err         error
	)
	switch {
	case v.warp:
		within, dist, err = v.db.verifyWarp(v.p, v.st, id, eps)
		bound = dist
	case v.p.approx():
		within, dist, bound, err = v.db.verifyFreqApprox(v.p, v.ar, v.st, id, eps, true)
	default:
		within, dist, err = v.db.verifyFreq(v.p, v.ar, v.st, id, eps)
	}
	if err != nil {
		v.err = err
		return false
	}
	if within {
		r := Result{ID: id, Name: v.db.names[id], Dist: dist}
		if v.p.approx() {
			r.Bound = bound
		}
		v.best.offer(r)
	}
	return true
}

// nnIndexedArena runs the transform-aware branch-and-bound of Section 4
// against this DB over the flat-slab batch traversal, feeding verified
// answers into best — which may be shared with searches over sibling
// shards — and accumulating filter-side costs into st (NodeAccesses,
// Candidates, DistanceTerms). Candidates stream out of the index in order
// of their k-coefficient lower bound; the traversal stops as soon as the
// next lower bound exceeds the current k-th best verified distance (lower
// bound <= true distance by Parseval, so stopping is exact). Steady state
// it allocates nothing.
func (db *DB) nnIndexedArena(p *rangePlan, best *topK, ar *execArena, st *ExecStats) error {
	markApprox(p, st)
	ar.nv = nnVisit{db: db, p: p, best: best, ar: ar, st: st, warp: p.q.WarpFactor >= 2}
	searchStats := db.idx.NearestIDs(p.qp, p.m, &ar.sc, &ar.nv)
	st.NodeAccesses += searchStats.NodesVisited
	err := ar.nv.err
	ar.nv = nnVisit{}
	return err
}

// nnIndexedInto is nnIndexedArena over a pooled arena — the form the
// sharded fan-out and the method-pinned entry points use.
func (db *DB) nnIndexedInto(p *rangePlan, best *topK, st *ExecStats) error {
	ar := getArena()
	defer putArena(ar)
	return db.nnIndexedArena(p, best, ar, st)
}

// NNIndexed answers the query with the transform-aware branch-and-bound of
// Section 4 ("as we go down the tree, we apply T to all entries of the node
// we visit ... use any kind of metric such as MINDIST for pruning"),
// refined incrementally: candidates stream out of the index in order of
// their k-coefficient lower bound; each is verified against its full
// record; the search stops as soon as the next lower bound exceeds the
// k-th best verified distance. Lower bound <= true distance (Parseval), so
// the result is exact. Results sort by (distance, ID).
func (db *DB) NNIndexed(q NNQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	p, err := planNN(db, q)
	if err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	best := newTopK(q.K)
	if err := db.nnIndexedInto(p, best, &st); err != nil {
		return nil, st, err
	}
	out := best.results()
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// nnScanArena is the scan analogue of nnIndexedArena: it verifies every
// stored series, with a pruning threshold that tightens to the (possibly
// shared) current k-th best distance.
func (db *DB) nnScanArena(p *rangePlan, best *topK, ar *execArena, st *ExecStats) error {
	markApprox(p, st)
	warp := p.q.WarpFactor >= 2
	approx := !warp && p.approx()
	for _, id := range db.ids {
		st.Candidates++
		var (
			within      bool
			dist, bound float64
			err         error
		)
		switch {
		case warp:
			within, dist, err = db.verifyWarp(p, st, id, best.threshold())
			bound = dist
		case approx:
			within, dist, bound, err = db.verifyFreqApprox(p, ar, st, id, best.threshold(), true)
		default:
			within, dist, err = db.verifyFreq(p, ar, st, id, best.threshold())
		}
		if err != nil {
			return err
		}
		if within {
			r := Result{ID: id, Name: db.names[id], Dist: dist}
			if p.approx() {
				r.Bound = bound
			}
			best.offer(r)
		}
	}
	return nil
}

// nnScanInto is nnScanArena over a pooled arena.
func (db *DB) nnScanInto(p *rangePlan, best *topK, st *ExecStats) error {
	ar := getArena()
	defer putArena(ar)
	return db.nnScanArena(p, best, ar, st)
}

// NNScan is the sequential-scan baseline for nearest-neighbor queries: it
// verifies every stored series, with a pruning threshold that tightens to
// the current k-th best distance (the scan analogue of early abandoning).
func (db *DB) NNScan(q NNQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	p, err := planNN(db, q)
	if err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	best := newTopK(q.K)
	if err := db.nnScanInto(p, best, &st); err != nil {
		return nil, st, err
	}
	out := best.results()
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}
