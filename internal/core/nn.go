package core

import (
	"container/heap"
	"fmt"
	"math"
	"sync"

	"repro/internal/index"
	"repro/internal/stats"
	"repro/internal/transform"
)

// NNQuery describes a k-nearest-neighbor query under a transformation: the
// k stored series minimizing D(T(nf(x)), nf(q)), or
// D(T(nf(x)), T(nf(q))) when BothSides is set.
type NNQuery struct {
	Values     []float64
	K          int
	Transform  transform.T
	WarpFactor int
	BothSides  bool
}

// resultHeap is a max-heap of Results under the (Dist, ID) total order:
// the root is the worst of the current k best, so it is the first to be
// displaced. Breaking distance ties by ID makes the retained k-set — and
// therefore NN output — independent of candidate arrival order, which is
// what lets shard searches share one bound without losing determinism.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return resultLess(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// topK is the current k-best set of a nearest-neighbor search, safe for
// concurrent use. A single-DB search owns one privately; a sharded search
// shares one instance across all shard workers, so every worker prunes
// against the globally best k-th distance and sharding does not inflate
// candidate counts.
type topK struct {
	mu sync.Mutex
	k  int
	h  resultHeap
}

func newTopK(k int) *topK { return &topK{k: k} }

// threshold returns the current k-th best distance, or +Inf while the set
// is still filling. Verification may use it as an early-abandoning bound;
// it only ever tightens.
func (t *topK) threshold() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.h.Len() < t.k {
		return math.Inf(1)
	}
	return t.h[0].Dist
}

// offer admits r if it beats the current worst of the k best under the
// (Dist, ID) order.
func (t *topK) offer(r Result) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.h.Len() < t.k {
		heap.Push(&t.h, r)
		return
	}
	if resultLess(r, t.h[0]) {
		t.h[0] = r
		heap.Fix(&t.h, 0)
	}
}

// results returns the final k best, sorted ascending by (Dist, ID).
func (t *topK) results() []Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Result, t.h.Len())
	copy(out, t.h)
	sortResults(out)
	return out
}

// planNN validates q and builds the plan of its equivalent open-threshold
// range query.
func planNN(db *DB, q NNQuery) (*rangePlan, error) {
	if q.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", q.K)
	}
	rq := RangeQuery{Values: q.Values, Eps: math.Inf(1), Transform: q.Transform, WarpFactor: q.WarpFactor, BothSides: q.BothSides}
	return db.planRange(rq)
}

// nnIndexedInto runs the transform-aware branch-and-bound of Section 4
// against this DB, feeding verified answers into best — which may be
// shared with searches over sibling shards — and accumulating filter-side
// costs into st (NodeAccesses, Candidates, DistanceTerms). Candidates
// stream out of the index in order of their k-coefficient lower bound;
// the traversal stops as soon as the next lower bound exceeds the current
// k-th best verified distance (lower bound <= true distance by Parseval,
// so stopping is exact).
func (db *DB) nnIndexedInto(p *rangePlan, best *topK, st *ExecStats) error {
	verify := db.verifierFor(p, st)

	var verr error
	searchStats := db.idx.NearestFunc(p.qp, p.m, func(c index.Candidate) bool {
		// eps is the shared k-th-best distance: it bounds both the decision
		// to continue the traversal and the early abandoning inside
		// verification. +Inf while the k-set is filling.
		eps := best.threshold()
		if c.PartialDistSq > eps*eps {
			return false // no remaining candidate can beat the k-th best
		}
		st.Candidates++
		within, dist, err := verify(c.ID, eps)
		if err != nil {
			verr = err
			return false
		}
		if within {
			best.offer(Result{ID: c.ID, Name: db.names[c.ID], Dist: dist})
		}
		return true
	})
	st.NodeAccesses += searchStats.NodesVisited
	return verr
}

// NNIndexed answers the query with the transform-aware branch-and-bound of
// Section 4 ("as we go down the tree, we apply T to all entries of the node
// we visit ... use any kind of metric such as MINDIST for pruning"),
// refined incrementally: candidates stream out of the index in order of
// their k-coefficient lower bound; each is verified against its full
// record; the search stops as soon as the next lower bound exceeds the
// k-th best verified distance. Lower bound <= true distance (Parseval), so
// the result is exact. Results sort by (distance, ID).
func (db *DB) NNIndexed(q NNQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	p, err := planNN(db, q)
	if err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	best := newTopK(q.K)
	if err := db.nnIndexedInto(p, best, &st); err != nil {
		return nil, st, err
	}
	out := best.results()
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// nnScanInto is the scan analogue of nnIndexedInto: it verifies every
// stored series, with a pruning threshold that tightens to the (possibly
// shared) current k-th best distance.
func (db *DB) nnScanInto(p *rangePlan, best *topK, st *ExecStats) error {
	verify := db.verifierFor(p, st)
	for _, id := range db.ids {
		st.Candidates++
		within, dist, err := verify(id, best.threshold())
		if err != nil {
			return err
		}
		if within {
			best.offer(Result{ID: id, Name: db.names[id], Dist: dist})
		}
	}
	return nil
}

// NNScan is the sequential-scan baseline for nearest-neighbor queries: it
// verifies every stored series, with a pruning threshold that tightens to
// the current k-th best distance (the scan analogue of early abandoning).
func (db *DB) NNScan(q NNQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	p, err := planNN(db, q)
	if err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	best := newTopK(q.K)
	if err := db.nnScanInto(p, best, &st); err != nil {
		return nil, st, err
	}
	out := best.results()
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}
