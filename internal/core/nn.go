package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/stats"
	"repro/internal/transform"
)

// NNQuery describes a k-nearest-neighbor query under a transformation: the
// k stored series minimizing D(T(nf(x)), nf(q)), or
// D(T(nf(x)), T(nf(q))) when BothSides is set.
type NNQuery struct {
	Values     []float64
	K          int
	Transform  transform.T
	WarpFactor int
	BothSides  bool
}

// resultHeap is a max-heap of Results by distance (the current k best).
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NNIndexed answers the query with the transform-aware branch-and-bound of
// Section 4 ("as we go down the tree, we apply T to all entries of the node
// we visit ... use any kind of metric such as MINDIST for pruning"),
// refined incrementally: candidates stream out of the index in order of
// their k-coefficient lower bound; each is verified against its full
// record; the search stops as soon as the next lower bound exceeds the
// k-th best verified distance. Lower bound <= true distance (Parseval), so
// the result is exact.
func (db *DB) NNIndexed(q NNQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	if q.K < 1 {
		return nil, st, fmt.Errorf("core: K must be >= 1, got %d", q.K)
	}
	rq := RangeQuery{Values: q.Values, Eps: math.Inf(1), Transform: q.Transform, WarpFactor: q.WarpFactor, BothSides: q.BothSides}
	if err := db.validateRange(rq); err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	qp, err := db.queryFeaturePoint(rq)
	if err != nil {
		return nil, st, err
	}
	m, err := db.schema.Map(q.Transform)
	if err != nil {
		return nil, st, err
	}
	if q.BothSides && !m.Identity() {
		qp = m.ApplyPoint(qp)
	}
	verify := db.makeVerifier(rq, &st)

	best := &resultHeap{}
	var verr error
	searchStats := db.idx.NearestFunc(qp, m, func(c index.Candidate) bool {
		if best.Len() == q.K && c.PartialDistSq > (*best)[0].Dist*(*best)[0].Dist {
			return false // no remaining candidate can beat the k-th best
		}
		st.Candidates++
		// While the heap is filling, verify with an open threshold; after
		// that, only distances under the k-th best matter, so early
		// abandoning can use it.
		eps := math.MaxFloat64
		if best.Len() == q.K {
			eps = (*best)[0].Dist
		}
		within, dist, err := verify(c.ID, eps)
		if err != nil {
			verr = err
			return false
		}
		if !within {
			return true
		}
		if best.Len() < q.K {
			heap.Push(best, Result{ID: c.ID, Name: db.names[c.ID], Dist: dist})
		} else if dist < (*best)[0].Dist {
			(*best)[0] = Result{ID: c.ID, Name: db.names[c.ID], Dist: dist}
			heap.Fix(best, 0)
		}
		return true
	})
	if verr != nil {
		return nil, st, verr
	}
	st.NodeAccesses = searchStats.NodesVisited

	out := make([]Result, best.Len())
	copy(out, *best)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}

// NNScan is the sequential-scan baseline for nearest-neighbor queries: it
// verifies every stored series, with a pruning threshold that tightens to
// the current k-th best distance (the scan analogue of early abandoning).
func (db *DB) NNScan(q NNQuery) ([]Result, ExecStats, error) {
	var st ExecStats
	if q.K < 1 {
		return nil, st, fmt.Errorf("core: K must be >= 1, got %d", q.K)
	}
	rq := RangeQuery{Values: q.Values, Eps: math.Inf(1), Transform: q.Transform, WarpFactor: q.WarpFactor, BothSides: q.BothSides}
	if err := db.validateRange(rq); err != nil {
		return nil, st, err
	}
	timer := stats.StartTimer()
	reads0 := db.pageReads()

	verify := db.makeVerifier(rq, &st)
	best := &resultHeap{}
	for _, id := range db.ids {
		st.Candidates++
		eps := math.MaxFloat64
		if best.Len() == q.K {
			eps = (*best)[0].Dist
		}
		within, dist, err := verify(id, eps)
		if err != nil {
			return nil, st, err
		}
		if !within {
			continue
		}
		if best.Len() < q.K {
			heap.Push(best, Result{ID: id, Name: db.names[id], Dist: dist})
		} else if dist < (*best)[0].Dist {
			(*best)[0] = Result{ID: id, Name: db.names[id], Dist: dist}
			heap.Fix(best, 0)
		}
	}
	out := make([]Result, best.Len())
	copy(out, *best)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	st.Results = len(out)
	st.PageReads = db.pageReads() - reads0
	st.Elapsed = timer.Elapsed()
	return out, st, nil
}
