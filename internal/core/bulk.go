package core

import (
	"fmt"

	"repro/internal/dft"
	"repro/internal/geom"
	"repro/internal/relation"
	"repro/internal/series"
)

// InsertBulk loads a batch of named series into an empty DB, building the
// index with STR bulk loading instead of one-at-a-time insertion. For the
// larger experimental relations (12,000 sequences in Figures 9/11) this is
// an order of magnitude faster to build and produces better-packed nodes
// (see the bulk-load ablation). The DB must be empty; names must be unique
// and non-empty; all series must have the DB length.
func (db *DB) InsertBulk(names []string, values [][]float64) error {
	ids := make([]int64, len(names))
	for i := range ids {
		ids[i] = int64(i)
	}
	return db.insertBulkIDs(names, values, ids, nil)
}

// insertBulkIDs is InsertBulk with caller-chosen IDs (one per series,
// unique). A Sharded store uses it to bulk-load each shard with globally
// unique IDs, passing the feature points it already extracted during
// batch validation so extraction — the dominant bulk-load cost — runs
// once per series; points == nil extracts here instead.
func (db *DB) insertBulkIDs(names []string, values [][]float64, ids []int64, points []geom.Point) error {
	if db.Len() != 0 || db.nextID != 0 {
		return fmt.Errorf("core: InsertBulk requires a fresh DB (have %d live series, %d ever inserted)", db.Len(), db.nextID)
	}
	if len(names) != len(values) || len(names) != len(ids) {
		return fmt.Errorf("core: %d names but %d series and %d ids", len(names), len(values), len(ids))
	}
	if points == nil {
		points = make([]geom.Point, len(values))
		for i := range values {
			p, err := db.schema.Extract(values[i])
			if err != nil {
				return err
			}
			points[i] = p
		}
	}
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return fmt.Errorf("core: empty series name at position %d", i)
		}
		if seen[name] {
			return fmt.Errorf("core: duplicate series name %q", name)
		}
		seen[name] = true
		if len(values[i]) != db.length {
			return fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values[i]), db.length)
		}
	}
	if err := db.idx.BulkLoad(points, ids); err != nil {
		return err
	}
	for i, name := range names {
		id := ids[i]
		if err := db.timeRel.Insert(id, values[i]); err != nil {
			return err
		}
		spec := dft.TransformReal(series.NormalForm(values[i]))
		if err := db.freqRel.Insert(id, relation.EncodeComplex(relation.Permute(spec, db.perm))); err != nil {
			return err
		}
		db.points[id] = points[i]
		db.names[id] = name
		db.byName[name] = id
		db.idPos[id] = len(db.ids)
		db.ids = append(db.ids, id)
		if id >= db.nextID {
			db.nextID = id + 1
		}
	}
	return nil
}
