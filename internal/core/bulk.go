package core

import (
	"fmt"

	"repro/internal/dft"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/rtree"
	"repro/internal/series"
)

// InsertBulk loads a batch of named series into an empty DB, building the
// index with STR bulk loading instead of one-at-a-time insertion. For the
// larger experimental relations (12,000 sequences in Figures 9/11) this is
// an order of magnitude faster to build and produces better-packed nodes
// (see the bulk-load ablation). The DB must be empty; names must be unique
// and non-empty; all series must have the DB length.
func (db *DB) InsertBulk(names []string, values [][]float64) error {
	ids := make([]int64, len(names))
	for i := range ids {
		ids[i] = int64(i)
	}
	return db.insertBulkIDs(names, values, ids, nil)
}

// insertBulkIDs is InsertBulk with caller-chosen IDs (one per series,
// unique). A Sharded store uses it to bulk-load each shard with globally
// unique IDs, passing the feature points it already extracted during
// batch validation so extraction — the dominant bulk-load cost — runs
// once per series; points == nil extracts here instead.
func (db *DB) insertBulkIDs(names []string, values [][]float64, ids []int64, points []geom.Point) error {
	return db.loadBulk(names, values, ids, points, nil, nil, nil)
}

// adoptBulk is the snapshot cold-start load: the relations fill from the
// precomputed energy-ordered spectra (no FFT) and the index is adopted
// from a decoded packed tree (no extraction, no STR sort) — the whole load
// is O(bytes read) plus one validation pass. The tree's leaf IDs must be
// exactly the given ids (the snapshot writer remapped them to dense record
// positions, which are the IDs the loader assigns).
func (db *DB) adoptBulk(names []string, values [][]float64, ids []int64, points []geom.Point, rawVals, specs [][]byte, tree *rtree.Tree) error {
	if tree == nil {
		return fmt.Errorf("core: adoptBulk needs a decoded tree")
	}
	return db.loadBulk(names, values, ids, points, rawVals, specs, tree)
}

// loadBulk is the shared bulk-load body. points == nil extracts features
// here; specs == nil computes spectra with the insert path's FFT, while
// non-nil specs are already-encoded spectrum records (the snapshot's DERV
// bytes, little-endian float64s) stored verbatim; rawVals, when non-nil,
// are the series values in the same encoding and stored verbatim too. A
// raw-only load (values == nil) is the adopt fast path: it never decodes
// a float, so it requires points and specs — everything a rebuild would
// derive from the values. tree, when non-nil, is validated and adopted
// instead of STR bulk loading.
func (db *DB) loadBulk(names []string, values [][]float64, ids []int64, points []geom.Point, rawVals, specs [][]byte, tree *rtree.Tree) error {
	if db.Len() != 0 || db.nextID != 0 {
		return fmt.Errorf("core: InsertBulk requires a fresh DB (have %d live series, %d ever inserted)", db.Len(), db.nextID)
	}
	if len(names) > 0 && values == nil && (rawVals == nil || points == nil || specs == nil) {
		return fmt.Errorf("core: a raw-only bulk load needs raw records, points, and spectra")
	}
	if values != nil && len(names) != len(values) {
		return fmt.Errorf("core: %d names but %d series", len(names), len(values))
	}
	if len(names) != len(ids) {
		return fmt.Errorf("core: %d names but %d ids", len(names), len(ids))
	}
	if specs != nil && len(specs) != len(names) {
		return fmt.Errorf("core: %d names but %d spectra", len(names), len(specs))
	}
	if rawVals != nil && len(rawVals) != len(names) {
		return fmt.Errorf("core: %d names but %d raw value records", len(names), len(rawVals))
	}
	if points == nil {
		points = make([]geom.Point, len(values))
		for i := range values {
			p, err := db.schema.Extract(values[i])
			if err != nil {
				return err
			}
			points[i] = p
		}
	}
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return fmt.Errorf("core: empty series name at position %d", i)
		}
		if seen[name] {
			return fmt.Errorf("core: duplicate series name %q", name)
		}
		seen[name] = true
		if values != nil && len(values[i]) != db.length {
			return fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values[i]), db.length)
		}
		if rawVals != nil && len(rawVals[i]) != 8*db.length {
			return fmt.Errorf("core: series %q raw record has %d bytes, DB expects %d", name, len(rawVals[i]), 8*db.length)
		}
	}
	if tree != nil {
		if err := db.adoptTree(tree, ids); err != nil {
			return err
		}
	} else if err := db.idx.BulkLoad(points, ids); err != nil {
		return err
	}
	// Raw records transfer ownership (InsertOwned): the snapshot read
	// allocated them for this load, so a memory-backed relation adopts
	// the buffers as its pages without copying.
	for i, name := range names {
		id := ids[i]
		var err error
		if rawVals != nil {
			err = db.timeRel.InsertOwned(id, rawVals[i])
		} else {
			err = db.timeRel.Insert(id, values[i])
		}
		if err != nil {
			return err
		}
		if specs != nil {
			if len(specs[i]) != 2*8*db.length {
				return fmt.Errorf("core: series %q spectrum record has %d bytes, DB expects %d", name, len(specs[i]), 2*8*db.length)
			}
			err = db.freqRel.InsertOwned(id, specs[i])
		} else {
			spec := dft.TransformReal(series.NormalForm(values[i]))
			err = db.freqRel.Insert(id, relation.EncodeComplex(relation.Permute(spec, db.perm)))
		}
		if err != nil {
			return err
		}
		db.points[id] = points[i]
		db.names[id] = name
		db.byName[name] = id
		db.idPos[id] = len(db.ids)
		db.ids = append(db.ids, id)
		if id >= db.nextID {
			db.nextID = id + 1
		}
	}
	return nil
}

// adoptTree validates a decoded packed tree against the load — structural
// invariants (index.Adopt) plus exact leaf-ID membership — and installs it
// as the DB's k-index.
func (db *DB) adoptTree(tree *rtree.Tree, ids []int64) error {
	if tree.Len() != len(ids) {
		return fmt.Errorf("core: adopted tree holds %d items, load has %d series", tree.Len(), len(ids))
	}
	want := make(map[int64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	bad := int64(-1)
	tree.All(func(it rtree.Item) bool {
		if !want[it.ID] {
			bad = it.ID
			return false
		}
		delete(want, it.ID)
		return true
	})
	if bad >= 0 {
		return fmt.Errorf("core: adopted tree stores unknown id %d", bad)
	}
	if len(want) != 0 {
		return fmt.Errorf("core: adopted tree is missing %d of the load's ids", len(want))
	}
	ix, err := index.Adopt(db.schema, tree)
	if err != nil {
		return err
	}
	db.idx = ix
	return nil
}
