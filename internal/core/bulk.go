package core

import (
	"fmt"

	"repro/internal/dft"
	"repro/internal/geom"
	"repro/internal/relation"
	"repro/internal/series"
)

// InsertBulk loads a batch of named series into an empty DB, building the
// index with STR bulk loading instead of one-at-a-time insertion. For the
// larger experimental relations (12,000 sequences in Figures 9/11) this is
// an order of magnitude faster to build and produces better-packed nodes
// (see the bulk-load ablation). The DB must be empty; names must be unique
// and non-empty; all series must have the DB length.
func (db *DB) InsertBulk(names []string, values [][]float64) error {
	if db.Len() != 0 || db.nextID != 0 {
		return fmt.Errorf("core: InsertBulk requires a fresh DB (have %d live series, %d ever inserted)", db.Len(), db.nextID)
	}
	if len(names) != len(values) {
		return fmt.Errorf("core: %d names but %d series", len(names), len(values))
	}
	points := make([]geom.Point, len(values))
	ids := make([]int64, len(values))
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return fmt.Errorf("core: empty series name at position %d", i)
		}
		if seen[name] {
			return fmt.Errorf("core: duplicate series name %q", name)
		}
		seen[name] = true
		if len(values[i]) != db.length {
			return fmt.Errorf("core: series %q has length %d, DB expects %d", name, len(values[i]), db.length)
		}
		p, err := db.schema.Extract(values[i])
		if err != nil {
			return err
		}
		points[i] = p
		ids[i] = int64(i)
	}
	if err := db.idx.BulkLoad(points, ids); err != nil {
		return err
	}
	for i, name := range names {
		id := ids[i]
		if err := db.timeRel.Insert(id, values[i]); err != nil {
			return err
		}
		spec := dft.TransformReal(series.NormalForm(values[i]))
		if err := db.freqRel.Insert(id, relation.EncodeComplex(relation.Permute(spec, db.perm))); err != nil {
			return err
		}
		db.points[id] = points[i]
		db.names[id] = name
		db.byName[name] = id
		db.ids = append(db.ids, id)
	}
	db.nextID = int64(len(names))
	return nil
}
