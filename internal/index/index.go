// Package index implements the paper's k-index (Section 4): an R*-tree over
// the first k DFT feature coefficients of every stored series, searched
// either directly or through a safe transformation applied on the fly to
// every node rectangle and data point (Algorithms 1 and 2). By Lemma 1 the
// traversal returns a superset of the true answer set — no false
// dismissals — which the query engine's post-processing then filters with
// exact distances from the full records.
package index

import (
	"fmt"
	"io"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/transform"
)

// KIndex is a feature-space R*-tree with schema-aware (polar or
// rectangular) overlap semantics.
type KIndex struct {
	schema  feature.Schema
	tree    *rtree.Tree
	angular []bool
	// plainOverlap disables the seam-aware modulo-2*pi overlap predicate
	// on phase-angle dimensions, reverting to plain interval intersection
	// (the paper's implicit behavior). Settable only through
	// SetPlainOverlap; exists for the angular-seam ablation, which
	// measures the false dismissals this causes.
	plainOverlap bool
}

// SetPlainOverlap toggles seam-unaware angle intersection (ablation only;
// true risks false dismissals near the +/- pi seam).
func (ix *KIndex) SetPlainOverlap(plain bool) { ix.plainOverlap = plain }

// New creates an empty k-index for the given feature schema.
func New(schema feature.Schema, opts rtree.Options) (*KIndex, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	tree, err := rtree.New(schema.Dims(), opts)
	if err != nil {
		return nil, err
	}
	return &KIndex{schema: schema, tree: tree, angular: schema.Angular()}, nil
}

// Adopt wraps a tree decoded from a snapshot (rtree.DecodeBinary) as the
// k-index, validating it structurally — dimensionality against the schema
// and the full R*-tree invariants — before use. This is the "validate"
// half of the snapshot cold start's read + validate + adopt path: the
// packed tree is taken as-is, with no re-sorting, re-insertion, or feature
// recomputation. The adopted tree keeps the fan-out recorded in the
// snapshot, which may differ from the store's configured rtree.Options.
func Adopt(schema feature.Schema, tree *rtree.Tree) (*KIndex, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if tree.Dims() != schema.Dims() {
		return nil, fmt.Errorf("index: adopted tree has %d dims, schema has %d", tree.Dims(), schema.Dims())
	}
	if err := tree.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("index: adopted tree invalid: %w", err)
	}
	return &KIndex{schema: schema, tree: tree, angular: schema.Angular()}, nil
}

// EncodeTree serialises the underlying packed tree in the versioned binary
// format (see rtree.EncodeBinary); remap translates stored IDs on the way
// out.
func (ix *KIndex) EncodeTree(w io.Writer, remap func(int64) (int64, bool)) error {
	return ix.tree.EncodeBinary(w, remap)
}

// Schema returns the feature schema the index was built with.
func (ix *KIndex) Schema() feature.Schema { return ix.schema }

// Len returns the number of indexed points.
func (ix *KIndex) Len() int { return ix.tree.Len() }

// Tree exposes the underlying R*-tree (read-only use: joins, diagnostics).
func (ix *KIndex) Tree() *rtree.Tree { return ix.tree }

// Insert adds a feature point under the given ID.
func (ix *KIndex) Insert(id int64, p geom.Point) error {
	if len(p) != ix.schema.Dims() {
		return fmt.Errorf("index: point has %d dims, schema has %d", len(p), ix.schema.Dims())
	}
	return ix.tree.Insert(geom.PointRect(p), id)
}

// InsertSeries extracts the feature point of s and inserts it.
func (ix *KIndex) InsertSeries(id int64, s []float64) error {
	p, err := ix.schema.Extract(s)
	if err != nil {
		return err
	}
	return ix.Insert(id, p)
}

// BulkLoad builds the index from pre-extracted feature points with STR
// packing. The index must be empty.
func (ix *KIndex) BulkLoad(points []geom.Point, ids []int64) error {
	if len(points) != len(ids) {
		return fmt.Errorf("index: %d points but %d ids", len(points), len(ids))
	}
	items := make([]rtree.Item, len(points))
	for i, p := range points {
		if len(p) != ix.schema.Dims() {
			return fmt.Errorf("index: point %d has %d dims, schema has %d", i, len(p), ix.schema.Dims())
		}
		items[i] = rtree.Item{Rect: geom.PointRect(p), ID: ids[i]}
	}
	return ix.tree.BulkLoad(items)
}

// Delete removes the point previously inserted under (p, id).
func (ix *KIndex) Delete(id int64, p geom.Point) bool {
	return ix.tree.Delete(geom.PointRect(p), id)
}

// Update moves the point stored under (old, id) to new, in place when the
// new point still lies inside its leaf's bounding rectangle (the common
// case for the small per-append feature drift of streaming ingest) and via
// delete + reinsert otherwise. See rtree.Tree.Update.
func (ix *KIndex) Update(id int64, old, new geom.Point) (inPlace, found bool) {
	return ix.tree.Update(geom.PointRect(old), geom.PointRect(new), id)
}

// Candidate is one index hit from the filter phase of Algorithm 2: a stored
// feature point whose transformed image falls in the query's search
// rectangle, together with the (squared) partial distance computed from the
// k retained coefficients. PartialDistSq lower-bounds the true full-series
// distance (Parseval), so candidates with PartialDistSq > eps^2 are pruned
// before any record fetch.
type Candidate struct {
	ID            int64
	Point         geom.Point
	Transformed   geom.Point
	PartialDistSq float64
}

// overlap returns the schema-appropriate rectangle intersection predicate:
// plain intersection in S_rect, seam-aware modulo-2*pi intersection on the
// phase-angle dimensions in S_pol.
func (ix *KIndex) overlap() rtree.Overlap {
	if ix.angular == nil || ix.plainOverlap {
		return nil
	}
	ang := ix.angular
	return func(tr, q geom.Rect) bool { return geom.IntersectsMixed(tr, q, ang) }
}

// Range runs the filter phase of the paper's Algorithm 2: traverse the
// index applying m (the affine action of a safe transformation) to every
// rectangle, collect the data points whose transformed image lies in the
// search rectangle around q, and compute their partial distances. When
// prune is true, candidates whose k-coefficient distance already exceeds
// eps are dropped (sound by Lemma 1's inequality chain).
//
// Pass transform.IdentityMap (or any map reporting Identity) for plain,
// untransformed range queries.
func (ix *KIndex) Range(q geom.Point, eps float64, m transform.AffineMap, mb feature.MomentBounds, prune bool) ([]Candidate, rtree.SearchStats) {
	if len(q) != ix.schema.Dims() {
		panic(fmt.Sprintf("index: query point has %d dims, schema has %d", len(q), ix.schema.Dims()))
	}
	qrect := ix.schema.SearchRect(q, eps, mb)
	epsSq := eps * eps
	var out []Candidate

	identity := m.Identity()
	rectTransform := func(r geom.Rect) geom.Rect { return r }
	if !identity {
		rectTransform = m.ApplyRect
	}

	st := ix.tree.TransformedSearch(qrect, rectTransform, ix.overlap(), func(it rtree.Item, tr geom.Rect) bool {
		p := it.Rect.Lo
		// Leaf rectangles are degenerate, so the transformed rectangle's
		// low corner *is* the transformed point. Phase angles may sit
		// outside [-pi, pi) here; CoeffDistSq reconstructs coefficients
		// with cmplx.Rect, which is angle-periodic, so no renormalization
		// is needed.
		tp := tr.Lo
		dSq := ix.schema.CoeffDistSq(tp, q)
		if prune && dSq > epsSq*(1+1e-12) {
			return true
		}
		out = append(out, Candidate{ID: it.ID, Point: p, Transformed: tp, PartialDistSq: dSq})
		return true
	})
	return out, st
}

// NearestFunc visits stored points in increasing order of the lower bound
// on the transformed coefficient distance to q, calling fn with each item's
// transformed point and its *exact k-coefficient* distance (squared). The
// visit order is by lower bound; fn receives exact partial distances and
// should stop (return false) once its own termination condition holds —
// typically when the bound of the next item exceeds the k-th best verified
// full distance.
func (ix *KIndex) NearestFunc(q geom.Point, m transform.AffineMap, fn func(c Candidate) bool) rtree.SearchStats {
	if len(q) != ix.schema.Dims() {
		panic(fmt.Sprintf("index: query point has %d dims, schema has %d", len(q), ix.schema.Dims()))
	}
	identity := m.Identity()
	lower := func(r geom.Rect) float64 {
		if !identity {
			r = m.ApplyRect(r)
		}
		return ix.schema.LowerBoundDistSq(q, r)
	}
	itemDist := func(it rtree.Item) float64 {
		p := it.Rect.Lo
		if !identity {
			p = m.ApplyPoint(p)
		}
		return ix.schema.CoeffDistSq(p, q)
	}
	return ix.tree.NearestScan(lower, itemDist, func(it rtree.Item, dist float64) bool {
		p := it.Rect.Lo
		tp := p
		if !identity {
			tp = m.ApplyPoint(p)
		}
		return fn(Candidate{ID: it.ID, Point: p, Transformed: tp, PartialDistSq: dist})
	})
}

// Materialize eagerly builds the transformed index I' of Algorithm 1 (for
// equivalence tests and the materialization ablation benchmark).
func (ix *KIndex) Materialize(m transform.AffineMap) *KIndex {
	return &KIndex{
		schema:       ix.schema,
		tree:         ix.tree.Materialize(m.ApplyRect),
		angular:      ix.angular,
		plainOverlap: ix.plainOverlap,
	}
}
