package index

import (
	"math/rand"
	"testing"

	"repro/internal/feature"
	"repro/internal/series"
	"repro/internal/transform"
)

// The batch index search must be bit-identical to the per-entry search:
// same candidate IDs in the same order, same traversal stats, same partial
// distances on the NN path.

func flatParityMaps(t *testing.T, sc feature.Schema, n int) []transform.AffineMap {
	t.Helper()
	identity := transform.IdentityMap(sc.Dims(), sc.Angular())
	// A transformation safe in the schema's space: the moving average's
	// stretch vector is complex (S_pol only); scale-and-shift is S_rect-safe.
	tr := transform.MovingAverage(n, 8)
	if sc.Space == feature.Rect {
		tr = transform.Scale(n, 1.7)
	}
	mavg, err := sc.Map(tr)
	if err != nil {
		t.Fatalf("map %s: %v", tr, err)
	}
	forced := identity
	forced.Force = true
	return []transform.AffineMap{identity, mavg, forced}
}

func TestRangeIDsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 64
	data := make([][]float64, 400)
	for i := range data {
		data[i] = randomWalk(rng, n)
	}
	for _, sc := range []feature.Schema{
		{Space: feature.Polar, K: 2, Moments: true},
		{Space: feature.Rect, K: 2, Moments: true},
	} {
		ix := buildIndex(t, sc, data)
		for _, plain := range []bool{false, true} {
			ix.SetPlainOverlap(plain)
			for _, m := range flatParityMaps(t, sc, n) {
				var scr Scratch
				var ids []int64
				for trial := 0; trial < 10; trial++ {
					q, err := sc.Extract(data[rng.Intn(len(data))])
					if err != nil {
						t.Fatal(err)
					}
					eps := rng.Float64() * 8
					prune := trial%2 == 0
					want, wantSt := ix.Range(q, eps, m, feature.MomentBounds{}, prune)
					ids, _ = ids[:0], wantSt
					got, gotSt := ix.RangeIDs(q, eps, m, feature.MomentBounds{}, prune, &scr, ids)
					ids = got
					if gotSt != wantSt {
						t.Fatalf("stats %+v, want %+v", gotSt, wantSt)
					}
					if len(got) != len(want) {
						t.Fatalf("%d ids, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i].ID {
							t.Fatalf("id[%d] = %d, want %d", i, got[i], want[i].ID)
						}
					}
				}
			}
		}
		ix.SetPlainOverlap(false)
	}
}

type nearRecorder struct {
	ids   []int64
	dists []float64
	limit int
}

func (r *nearRecorder) VisitNear(id int64, distSq float64) bool {
	r.ids = append(r.ids, id)
	r.dists = append(r.dists, distSq)
	return len(r.ids) < r.limit
}

func TestNearestIDsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n := 64
	data := make([][]float64, 400)
	for i := range data {
		data[i] = randomWalk(rng, n)
	}
	for _, sc := range []feature.Schema{
		{Space: feature.Polar, K: 2, Moments: true},
		{Space: feature.Rect, K: 2, Moments: true},
	} {
		ix := buildIndex(t, sc, data)
		for _, m := range flatParityMaps(t, sc, n) {
			var scr Scratch
			for trial := 0; trial < 10; trial++ {
				q, err := sc.Extract(series.NormalForm(data[rng.Intn(len(data))]))
				if err != nil {
					t.Fatal(err)
				}
				k := 1 + rng.Intn(20)
				var wantIDs []int64
				var wantDists []float64
				ix.NearestFunc(q, m, func(c Candidate) bool {
					wantIDs = append(wantIDs, c.ID)
					wantDists = append(wantDists, c.PartialDistSq)
					return len(wantIDs) < k
				})
				rec := nearRecorder{limit: k}
				ix.NearestIDs(q, m, &scr, &rec)
				if len(rec.ids) != len(wantIDs) {
					t.Fatalf("%d items, want %d", len(rec.ids), len(wantIDs))
				}
				for i := range wantIDs {
					if rec.ids[i] != wantIDs[i] || rec.dists[i] != wantDists[i] {
						t.Fatalf("item %d: (%d, %v), want (%d, %v)",
							i, rec.ids[i], rec.dists[i], wantIDs[i], wantDists[i])
					}
				}
			}
		}
	}
}
