package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dft"
	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/series"
	"repro/internal/transform"
)

func randomWalk(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 20 + r.Float64()*79
	for i := range s {
		v += r.Float64()*8 - 4
		s[i] = v
	}
	return s
}

// fullNFDistance is the exact Euclidean distance between normal forms under
// transformation t applied to x's spectrum (the paper's D(T(X), Q)).
func fullNFDistance(t transform.T, x, q []float64) float64 {
	X := dft.TransformReal(series.NormalForm(x))
	Q := dft.TransformReal(series.NormalForm(q))
	return dft.Distance(t.Apply(X), Q)
}

func buildIndex(t *testing.T, sc feature.Schema, data [][]float64) *KIndex {
	t.Helper()
	ix, err := New(sc, rtree.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := ix.InsertSeries(int64(i), s); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	if _, err := New(feature.Schema{Space: feature.Polar, K: 0}, rtree.Options{}); err == nil {
		t.Error("invalid schema should fail")
	}
	if _, err := New(feature.DefaultSchema, rtree.Options{MaxEntries: 2}); err == nil {
		t.Error("invalid rtree options should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	ix, _ := New(feature.DefaultSchema, rtree.Options{})
	if err := ix.Insert(1, geom.Point{1, 2}); err == nil {
		t.Error("wrong dims should fail")
	}
	if err := ix.InsertSeries(1, []float64{1}); err == nil {
		t.Error("short series should fail")
	}
}

func TestRangeNoFalseDismissalsLemma1(t *testing.T) {
	// Lemma 1: for every safe transformation, the index filter phase must
	// return a superset of the true answer set. Verified by comparing the
	// candidate IDs against an exact full-spectrum linear scan, across both
	// feature spaces and several transformations.
	r := rand.New(rand.NewSource(1))
	n := 64
	data := make([][]float64, 300)
	for i := range data {
		data[i] = randomWalk(r, n)
	}
	// Plant near-duplicates so answers exist at small eps.
	for i := 0; i < 30; i++ {
		src := data[i]
		dup := make([]float64, n)
		for j := range dup {
			dup[j] = src[j] + r.NormFloat64()*0.2
		}
		data[100+i] = dup
	}

	type caseT struct {
		name string
		sc   feature.Schema
		tr   transform.T
	}
	cases := []caseT{
		{"polar identity", feature.Schema{Space: feature.Polar, K: 2, Moments: true}, transform.Identity(n)},
		{"polar mavg5", feature.Schema{Space: feature.Polar, K: 2, Moments: true}, transform.MovingAverage(n, 5)},
		{"polar mavg20", feature.Schema{Space: feature.Polar, K: 3, Moments: true}, transform.MovingAverage(n, 20)},
		{"polar reverse", feature.Schema{Space: feature.Polar, K: 2, Moments: true}, transform.Reverse(n)},
		{"polar warp2", feature.Schema{Space: feature.Polar, K: 2, Moments: true}, transform.Warp(n, 2)},
		{"rect identity", feature.Schema{Space: feature.Rect, K: 2, Moments: true}, transform.Identity(n)},
		{"rect reverse", feature.Schema{Space: feature.Rect, K: 3, Moments: true}, transform.Reverse(n)},
		{"rect scale", feature.Schema{Space: feature.Rect, K: 2, Moments: true}, transform.Scale(n, 1.7)},
	}
	for _, tc := range cases {
		ix := buildIndex(t, tc.sc, data)
		m, err := tc.sc.Map(tc.tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for trial := 0; trial < 5; trial++ {
			q := data[r.Intn(len(data))]
			qp, _ := tc.sc.Extract(q)
			for _, eps := range []float64{0.3, 1.0, 5.0} {
				cands, _ := ix.Range(qp, eps, m, feature.MomentBounds{}, true)
				got := map[int64]bool{}
				for _, c := range cands {
					got[c.ID] = true
				}
				for i, x := range data {
					if fullNFDistance(tc.tr, x, q) <= eps {
						if !got[int64(i)] {
							t.Fatalf("%s eps=%g: false dismissal of series %d", tc.name, eps, i)
						}
					}
				}
			}
		}
	}
}

func TestRangeIdentityMatchesBruteForcePartial(t *testing.T) {
	// With pruning enabled the candidate set equals the set of points whose
	// k-coefficient distance is within eps (modulo boundary ties).
	r := rand.New(rand.NewSource(2))
	sc := feature.Schema{Space: feature.Polar, K: 2, Moments: true}
	n := 64
	data := make([][]float64, 200)
	points := make([]geom.Point, 200)
	for i := range data {
		data[i] = randomWalk(r, n)
		points[i], _ = sc.Extract(data[i])
	}
	ix := buildIndex(t, sc, data)
	id := transform.IdentityMap(sc.Dims(), sc.Angular())
	for trial := 0; trial < 10; trial++ {
		q := points[r.Intn(len(points))]
		eps := 0.5 + r.Float64()*2
		cands, _ := ix.Range(q, eps, id, feature.MomentBounds{}, true)
		got := map[int64]bool{}
		for _, c := range cands {
			got[c.ID] = true
		}
		for i, p := range points {
			want := sc.CoeffDistSq(p, q) <= eps*eps
			if want != got[int64(i)] {
				t.Fatalf("trial %d: candidate set mismatch at %d (want %v)", trial, i, want)
			}
		}
	}
}

func TestRangeMomentBounds(t *testing.T) {
	// GK95-style shift/scale restriction: moment bounds must constrain the
	// candidate set by mean and std.
	r := rand.New(rand.NewSource(3))
	sc := feature.DefaultSchema
	n := 64
	data := make([][]float64, 100)
	for i := range data {
		data[i] = randomWalk(r, n)
	}
	ix := buildIndex(t, sc, data)
	id := transform.IdentityMap(sc.Dims(), sc.Angular())
	q, _ := sc.Extract(data[0])
	all, _ := ix.Range(q, 100, id, feature.MomentBounds{}, false)
	if len(all) != len(data) {
		t.Fatalf("unbounded wide query returned %d of %d", len(all), len(data))
	}
	mb := feature.MomentBounds{MeanLo: 40, MeanHi: 60, StdLo: -math.MaxFloat64, StdHi: math.MaxFloat64}
	bounded, _ := ix.Range(q, 100, id, mb, false)
	for _, c := range bounded {
		mean, _ := sc.MomentsOf(c.Point)
		if mean < 40 || mean > 60 {
			t.Fatalf("moment bound violated: mean %v", mean)
		}
	}
	var want int
	for _, s := range data {
		if m := series.Mean(s); m >= 40 && m <= 60 {
			want++
		}
	}
	if len(bounded) != want {
		t.Fatalf("bounded query returned %d, want %d", len(bounded), want)
	}
}

func TestRangePanicsOnWrongDims(t *testing.T) {
	ix, _ := New(feature.DefaultSchema, rtree.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong query dims did not panic")
		}
	}()
	ix.Range(geom.Point{1}, 1, transform.IdentityMap(6, nil), feature.MomentBounds{}, true)
}

func TestBulkLoadAgreesWithInserts(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sc := feature.DefaultSchema
	n := 64
	data := make([][]float64, 400)
	points := make([]geom.Point, 400)
	ids := make([]int64, 400)
	for i := range data {
		data[i] = randomWalk(r, n)
		points[i], _ = sc.Extract(data[i])
		ids[i] = int64(i)
	}
	inc := buildIndex(t, sc, data)
	bulk, _ := New(sc, rtree.Options{MaxEntries: 8})
	if err := bulk.BulkLoad(points, ids); err != nil {
		t.Fatal(err)
	}
	if err := bulk.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	id := transform.IdentityMap(sc.Dims(), sc.Angular())
	for trial := 0; trial < 8; trial++ {
		q := points[r.Intn(len(points))]
		eps := 0.5 + r.Float64()*3
		a, _ := inc.Range(q, eps, id, feature.MomentBounds{}, true)
		b, _ := bulk.Range(q, eps, id, feature.MomentBounds{}, true)
		ai := make([]int64, len(a))
		bi := make([]int64, len(b))
		for i := range a {
			ai[i] = a[i].ID
		}
		for i := range b {
			bi[i] = b[i].ID
		}
		sort.Slice(ai, func(i, j int) bool { return ai[i] < ai[j] })
		sort.Slice(bi, func(i, j int) bool { return bi[i] < bi[j] })
		if len(ai) != len(bi) {
			t.Fatalf("bulk vs incremental: %d vs %d candidates", len(bi), len(ai))
		}
		for i := range ai {
			if ai[i] != bi[i] {
				t.Fatal("bulk vs incremental candidate mismatch")
			}
		}
	}
}

func TestBulkLoadValidation(t *testing.T) {
	ix, _ := New(feature.DefaultSchema, rtree.Options{})
	if err := ix.BulkLoad([]geom.Point{{1, 2}}, []int64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := ix.BulkLoad([]geom.Point{{1, 2}}, []int64{1}); err == nil {
		t.Error("wrong dims should fail")
	}
}

func TestDelete(t *testing.T) {
	sc := feature.DefaultSchema
	ix, _ := New(sc, rtree.Options{})
	r := rand.New(rand.NewSource(5))
	s := randomWalk(r, 64)
	p, _ := sc.Extract(s)
	ix.Insert(7, p)
	if ix.Len() != 1 {
		t.Fatal("insert failed")
	}
	if !ix.Delete(7, p) {
		t.Fatal("delete failed")
	}
	if ix.Len() != 0 {
		t.Fatal("delete did not remove")
	}
	if ix.Delete(7, p) {
		t.Fatal("double delete returned true")
	}
}

func TestNearestFuncOrderedByPartialDistance(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 64
	for _, sc := range []feature.Schema{
		{Space: feature.Polar, K: 2, Moments: true},
		{Space: feature.Rect, K: 2, Moments: true},
	} {
		data := make([][]float64, 250)
		for i := range data {
			data[i] = randomWalk(r, n)
		}
		ix := buildIndex(t, sc, data)
		q, _ := sc.Extract(randomWalk(r, n))
		id := transform.IdentityMap(sc.Dims(), sc.Angular())
		var dists []float64
		var ids []int64
		ix.NearestFunc(q, id, func(c Candidate) bool {
			dists = append(dists, c.PartialDistSq)
			ids = append(ids, c.ID)
			return len(dists) < 20
		})
		if len(dists) != 20 {
			t.Fatalf("visited %d", len(dists))
		}
		for i := 1; i < len(dists); i++ {
			if dists[i] < dists[i-1]-1e-12 {
				t.Fatalf("space %v: distances not monotone: %v", sc.Space, dists)
			}
		}
		// First 20 must be the global 20 smallest partial distances.
		type pd struct {
			id int64
			d  float64
		}
		all := make([]pd, len(data))
		for i, s := range data {
			p, _ := sc.Extract(s)
			all[i] = pd{int64(i), sc.CoeffDistSq(p, q)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < 20; i++ {
			if math.Abs(all[i].d-dists[i]) > 1e-9 {
				t.Fatalf("space %v rank %d: %v != oracle %v", sc.Space, i, dists[i], all[i].d)
			}
		}
	}
}

func TestNearestFuncWithTransform(t *testing.T) {
	// NN under mavg: visiting order must match brute-force transformed
	// partial distances.
	r := rand.New(rand.NewSource(7))
	n := 64
	sc := feature.Schema{Space: feature.Polar, K: 2, Moments: true}
	data := make([][]float64, 150)
	for i := range data {
		data[i] = randomWalk(r, n)
	}
	ix := buildIndex(t, sc, data)
	tr := transform.MovingAverage(n, 5)
	m, err := sc.Map(tr)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sc.Extract(randomWalk(r, n))
	var got []float64
	ix.NearestFunc(q, m, func(c Candidate) bool {
		got = append(got, c.PartialDistSq)
		return len(got) < 10
	})
	var oracle []float64
	for _, s := range data {
		p, _ := sc.Extract(s)
		oracle = append(oracle, sc.CoeffDistSq(m.ApplyPoint(p), q))
	}
	sort.Float64s(oracle)
	for i := range got {
		if math.Abs(got[i]-oracle[i]) > 1e-9 {
			t.Fatalf("rank %d: %v != %v", i, got[i], oracle[i])
		}
	}
}

func TestMaterializeEquivalence(t *testing.T) {
	// Algorithm 1 (materialized I') and Algorithm 2 (on the fly) must agree.
	r := rand.New(rand.NewSource(8))
	n := 64
	sc := feature.Schema{Space: feature.Polar, K: 2, Moments: true}
	data := make([][]float64, 200)
	for i := range data {
		data[i] = randomWalk(r, n)
	}
	ix := buildIndex(t, sc, data)
	tr := transform.MovingAverage(n, 20)
	m, _ := sc.Map(tr)
	mat := ix.Materialize(m)
	idm := transform.IdentityMap(sc.Dims(), sc.Angular())
	for trial := 0; trial < 10; trial++ {
		q, _ := sc.Extract(data[r.Intn(len(data))])
		eps := 0.3 + r.Float64()*2
		a, _ := ix.Range(q, eps, m, feature.MomentBounds{}, false)
		b, _ := mat.Range(q, eps, idm, feature.MomentBounds{}, false)
		am := map[int64]bool{}
		for _, c := range a {
			am[c.ID] = true
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d on-the-fly vs %d materialized", trial, len(a), len(b))
		}
		for _, c := range b {
			if !am[c.ID] {
				t.Fatalf("trial %d: materialized found %d missing on the fly", trial, c.ID)
			}
		}
	}
}

func TestSchemaAccessor(t *testing.T) {
	ix, _ := New(feature.DefaultSchema, rtree.Options{})
	if ix.Schema() != feature.DefaultSchema {
		t.Fatal("Schema accessor wrong")
	}
}
