package index

import (
	"fmt"

	"repro/internal/feature"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/transform"
)

// This file is the zero-allocation batch form of the k-index read path:
// Range and NearestFunc restated over the R*-tree's flat node slabs with
// caller-owned scratch. Answers are bit-identical to the per-entry
// traversals — same candidates, same order, same partial distances — which
// the core exactness-parity tests pin end to end.

// Scratch is the reusable working memory of one batch index search: the
// tree traversal scratch plus the query-side buffers (search-rectangle
// corners and reconstructed query coefficients) and the embedded visitor
// and kernel state, so interface conversions at the rtree boundary never
// allocate. A Scratch may be reused across queries, never concurrently.
type Scratch struct {
	tree     rtree.Scratch
	qc       []complex128
	qlo, qhi []float64
	rc       rangeCollector
	kern     nnKernel
}

// rangeCollector is the FlatVisitor of a batch range search: it applies the
// partial-distance prune (same threshold arithmetic as Range) and collects
// surviving IDs.
type rangeCollector struct {
	schema feature.Schema
	qc     []complex128
	limit  float64 // epsSq * (1 + 1e-12), the Range prune threshold
	prune  bool
	ids    []int64
}

func (rc *rangeCollector) VisitFlat(id int64, tlo, thi []float64) bool {
	// Phase angles in tlo may sit outside [-pi, pi); like Range, the
	// coefficient reconstruction is angle-periodic so no renormalization —
	// and bit-identity with Range requires not renormalizing.
	dSq := rc.schema.CoeffDistSqFlat(tlo, rc.qc, false)
	if rc.prune && dSq > rc.limit {
		return true
	}
	rc.ids = append(rc.ids, id)
	return true
}

// nnKernel supplies the feature-space geometry of a batch nearest-neighbor
// traversal: LowerBoundDistSq over transformed child rectangles and
// CoeffDistSq over transformed leaf points. renorm re-normalizes phase
// angles on the transformed-point path, matching AffineMap.ApplyPoint in
// NearestFunc's itemDist.
type nnKernel struct {
	schema feature.Schema
	q      []float64
	qc     []complex128
	renorm bool
}

func (k *nnKernel) LowerBatch(lo, hi []float64, count, dims int, out []float64) {
	for e := 0; e < count; e++ {
		off := e * dims
		out[e] = k.schema.LowerBoundDistSqFlat(k.q, lo[off:off+dims], hi[off:off+dims])
	}
}

func (k *nnKernel) PointBatch(lo []float64, count, dims int, out []float64) {
	for e := 0; e < count; e++ {
		off := e * dims
		out[e] = k.schema.CoeffDistSqFlat(lo[off:off+dims], k.qc, k.renorm)
	}
}

// flatMap builds the tree-level affine action for m, attaching the angular
// flags exactly when the per-entry traversals would use the seam-aware
// overlap predicate.
func (ix *KIndex) flatMap(m transform.AffineMap) rtree.FlatMap {
	fm := rtree.FlatMap{C: m.C, D: m.D, Identity: m.Identity()}
	if ix.angular != nil && !ix.plainOverlap {
		fm.Angular = ix.angular
	}
	return fm
}

// RangeIDs is the batch form of Range, reduced to what the executor
// consumes: it appends the IDs of surviving candidates to out (post-prune,
// in the same order Range emits them) and returns the extended slice.
// Steady state it allocates nothing: scratch is caller-owned and out is
// reused across queries.
func (ix *KIndex) RangeIDs(q geom.Point, eps float64, m transform.AffineMap, mb feature.MomentBounds, prune bool, sc *Scratch, out []int64) ([]int64, rtree.SearchStats) {
	if len(q) != ix.schema.Dims() {
		panic(fmt.Sprintf("index: query point has %d dims, schema has %d", len(q), ix.schema.Dims()))
	}
	dims := ix.schema.Dims()
	if cap(sc.qlo) < dims {
		sc.qlo = make([]float64, dims)
		sc.qhi = make([]float64, dims)
	}
	sc.qlo, sc.qhi = sc.qlo[:dims], sc.qhi[:dims]
	ix.schema.SearchRectInto(q, eps, mb, sc.qlo, sc.qhi)
	if cap(sc.qc) < ix.schema.K {
		sc.qc = make([]complex128, ix.schema.K)
	}
	sc.qc = sc.qc[:ix.schema.K]
	ix.schema.CoeffsInto(q, sc.qc)

	epsSq := eps * eps
	sc.rc = rangeCollector{
		schema: ix.schema,
		qc:     sc.qc,
		limit:  epsSq * (1 + 1e-12),
		prune:  prune,
		ids:    out,
	}
	st := ix.tree.FlatRange(sc.qlo, sc.qhi, ix.flatMap(m), &sc.tree, &sc.rc)
	out = sc.rc.ids
	sc.rc.ids = nil // do not retain the caller's buffer across queries
	return out, st
}

// NearestIDs is the batch form of NearestFunc: it visits stored IDs in
// increasing order of the transformed-coefficient lower bound, handing v
// each item's exact k-coefficient (squared) partial distance. Steady state
// it allocates nothing.
func (ix *KIndex) NearestIDs(q geom.Point, m transform.AffineMap, sc *Scratch, v rtree.FlatNNVisitor) rtree.SearchStats {
	if len(q) != ix.schema.Dims() {
		panic(fmt.Sprintf("index: query point has %d dims, schema has %d", len(q), ix.schema.Dims()))
	}
	if cap(sc.qc) < ix.schema.K {
		sc.qc = make([]complex128, ix.schema.K)
	}
	sc.qc = sc.qc[:ix.schema.K]
	ix.schema.CoeffsInto(q, sc.qc)

	fm := ix.flatMap(m)
	sc.kern = nnKernel{schema: ix.schema, q: q, qc: sc.qc, renorm: !fm.Identity}
	return ix.tree.NearestFlat(fm, &sc.kern, &sc.tree, v)
}
