package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "kind", "range")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "kind", "range"); again != c {
		t.Fatalf("same labels returned a different counter")
	}
	if other := r.Counter("reqs_total", "kind", "nn"); other == c {
		t.Fatalf("different labels shared a counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("histogram sum = %g, want 56.05", h.Sum())
	}
}

func TestLabelKeyCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "x", "1", "y", "2")
	b := r.Counter("m_total", "y", "2", "x", "1")
	if a != b {
		t.Fatalf("label order changed the series identity")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Describe("q_total", "queries served")
	r.Counter("q_total", "kind", "range").Add(3)
	r.Gauge("series").Set(42)
	r.Histogram("dur_seconds", []float64{0.5, 1}).Observe(0.7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP q_total queries served",
		"# TYPE q_total counter",
		`q_total{kind="range"} 3`,
		"# TYPE series gauge",
		"series 42",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{le="0.5"} 0`,
		`dur_seconds_bucket{le="1"} 1`,
		`dur_seconds_bucket{le="+Inf"} 1`,
		"dur_seconds_sum 0.7",
		"dur_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be name[{labels}] value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if _, _, _, err := ParseLine(line); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "q", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "w", "x").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", LatencyBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "w", "x").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h", LatencyBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestEnabledToggle(t *testing.T) {
	if !Enabled() {
		t.Fatal("telemetry should default to enabled")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not stick")
	}
	SetEnabled(true)
}
