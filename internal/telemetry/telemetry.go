// Package telemetry is a dependency-free metrics registry: atomic
// counters, gauges, and fixed-bucket histograms, identified by name plus
// label pairs and exported in the Prometheus text exposition format
// (version 0.0.4). It exists so every layer of tsq — engine, planner,
// server, stream hub, runtime sampler — can feed one scrape surface
// (GET /metrics on tsqd) without pulling in a client library.
//
// Hot paths guard their instrumentation with Enabled(): disabling turns
// every observation into one atomic load, which is what lets
// bench-metrics-overhead measure the cost of the instrumentation itself.
//
// Handles are cheap to look up (one RWMutex-guarded map read per call)
// and cheap to update (atomic adds); call sites on very hot loops may
// also cache the returned *Counter/*Gauge/*Histogram.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry every tsq layer reports into and
// tsqd's /metrics serves.
var Default = NewRegistry()

var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether instrumentation is on. Hot paths check it
// before building label strings.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns instrumentation on or off globally. Off, every
// guarded observation costs one atomic load — the baseline the overhead
// benchmark compares against.
func SetEnabled(on bool) { enabled.Store(on) }

// LatencyBuckets are the default histogram bounds for query and request
// durations, in seconds: 100µs .. 2.5s.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// RatioBuckets are the default bounds for dimensionless ratios — planner
// absolute relative cost error, fan-out imbalance.
var RatioBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: cumulative counts per upper
// bound plus sum and count, matching the Prometheus histogram type.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// family is one named metric with its label-distinguished series.
type family struct {
	name    string
	kind    metricKind
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any      // label key -> *Counter | *Gauge | *Histogram
	order  map[string][]string // label key -> flattened k,v pairs
}

// Registry holds metric families. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		help:     make(map[string]string),
	}
}

// Describe attaches a HELP line to a metric name.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

func (r *Registry) family(name string, kind metricKind, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name:    name,
				kind:    kind,
				buckets: buckets,
				series:  make(map[string]any),
				order:   make(map[string][]string),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// labelKey canonicalizes flattened k,v pairs into a deterministic series
// key. Pairs must come in even length; an odd trailing key is dropped.
// This runs on every guarded observation, so it sorts small label sets
// on the stack and only escapes values that need it.
func labelKey(labels []string) string {
	n := len(labels) / 2
	if n == 0 {
		return ""
	}
	var buf [4]int
	var idx []int
	if n <= len(buf) {
		idx = buf[:n]
	} else {
		idx = make([]int, n)
	}
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: label sets are tiny and call sites usually pass
	// them already ordered.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && labels[2*idx[j]] < labels[2*idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	size := 0
	for i := 0; i < n; i++ {
		size += len(labels[2*i]) + len(labels[2*i+1]) + 4
	}
	var b strings.Builder
	b.Grow(size)
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[2*j])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[2*j+1]))
		b.WriteByte('"')
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return labelEscaper.Replace(v)
}

func (f *family) get(labels []string, mk func() any) any {
	key := labelKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = mk()
	f.series[key] = s
	f.order[key] = append([]string(nil), labels...)
	return s
}

// Counter returns (creating on first use) the counter series of name with
// the given flattened label k,v pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	f := r.family(name, counterKind, nil)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the gauge series of name.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	f := r.family(name, gaugeKind, nil)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram series of name.
// buckets are the upper bounds, ascending; they are fixed by the first
// call for the whole family.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	f := r.family(name, histogramKind, buckets)
	return f.get(labels, func() any {
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Int64, len(f.buckets)+1)
		return h
	}).(*Histogram)
}

// Counter is Default.Counter.
func Count(name string, labels ...string) *Counter { return Default.Counter(name, labels...) }

// GaugeOf is Default.Gauge.
func GaugeOf(name string, labels ...string) *Gauge { return Default.Gauge(name, labels...) }

// HistogramOf is Default.Histogram.
func HistogramOf(name string, buckets []float64, labels ...string) *Histogram {
	return Default.Histogram(name, buckets, labels...)
}

// Describe is Default.Describe.
func Describe(name, help string) { Default.Describe(name, help) }

// Reset drops every series of the named family, keeping its type and
// help text. It exists for scrape-time families whose label sets are
// rebuilt per scrape (per-subscriber gauges, worst-recent exemplar
// links): without it a departed label set would keep exporting its last
// value forever. Handles returned before a Reset keep working but no
// longer render; callers of such families must re-resolve per scrape.
func (r *Registry) Reset(name string) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	f.series = make(map[string]any)
	f.order = make(map[string][]string)
	f.mu.Unlock()
}

// Reset is Default.Reset.
func Reset(name string) { Default.Reset(name) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families and series in deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		if h := help[f.name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			writeSeries(&b, f, key, f.series[key])
		}
		f.mu.RUnlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, key string, s any) {
	switch m := s.(type) {
	case *Counter:
		writeSample(b, f.name, key, strconv.FormatInt(m.Value(), 10))
	case *Gauge:
		writeSample(b, f.name, key, formatFloat(m.Value()))
	case *Histogram:
		cum := int64(0)
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			writeSample(b, f.name+"_bucket", joinLabels(key, `le="`+formatFloat(bound)+`"`), strconv.FormatInt(cum, 10))
		}
		cum += m.counts[len(m.bounds)].Load()
		writeSample(b, f.name+"_bucket", joinLabels(key, `le="+Inf"`), strconv.FormatInt(cum, 10))
		writeSample(b, f.name+"_sum", key, formatFloat(m.Sum()))
		writeSample(b, f.name+"_count", key, strconv.FormatInt(m.Count(), 10))
	}
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}
