package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseLine parses one Prometheus text exposition sample line of the form
//
//	name{label="value",...} value
//
// returning the metric name, its labels (nil when bare), and the sample
// value. Comment and blank lines are the caller's to skip.
func ParseLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("telemetry: unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("telemetry: malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if name == "" || !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("telemetry: bad metric name in %q", line)
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return "", nil, 0, fmt.Errorf("telemetry: bad value in %q: %v", line, err)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("telemetry: malformed labels %q", s)
		}
		key := s[:eq]
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("telemetry: unterminated label value in %q", s)
		}
		out[key] = b.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// Samples is a parsed exposition document: sample values keyed by
// "name" or "name{k=v,...}" with labels in sorted key order.
type Samples map[string]float64

// Key builds the Samples lookup key for a metric name and flattened
// label k,v pairs.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[2*j])
		b.WriteByte('=')
		b.WriteString(labels[2*j+1])
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses a full Prometheus text exposition document strictly:
// every non-comment line must be a well-formed sample, and every TYPE
// comment must name a known metric type. It returns every sample.
func ParseText(r io.Reader) (Samples, error) {
	out := make(Samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("telemetry: line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("telemetry: line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, labels, v, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %v", lineNo, err)
		}
		flat := make([]string, 0, 2*len(labels))
		for k, val := range labels {
			flat = append(flat, k, val)
		}
		out[Key(name, flat...)] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
