package pagefile

import (
	"bytes"
	"sync"
	"testing"
)

func TestNewBufferPoolValidation(t *testing.T) {
	f := New(8)
	if _, err := NewBufferPool(f, 0); err == nil {
		t.Fatal("capacity 0 should fail")
	}
	bp, err := NewBufferPool(f, 3)
	if err != nil || bp.Capacity() != 3 {
		t.Fatalf("NewBufferPool: %v", err)
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	f := New(8)
	first, count := f.Append(bytes.Repeat([]byte{7}, 24)) // 3 pages
	f.ResetStats()
	bp, _ := NewBufferPool(f, 10)

	if _, err := bp.View(first, count); err != nil {
		t.Fatal(err)
	}
	h, m := bp.HitsMisses()
	if h != 0 || m != 3 {
		t.Fatalf("cold read: hits=%d misses=%d", h, m)
	}
	if f.Stats().Reads != 3 {
		t.Fatalf("physical reads = %d, want 3", f.Stats().Reads)
	}
	// Second read hits entirely.
	if _, err := bp.View(first, count); err != nil {
		t.Fatal(err)
	}
	h, m = bp.HitsMisses()
	if h != 3 || m != 3 {
		t.Fatalf("warm read: hits=%d misses=%d", h, m)
	}
	if f.Stats().Reads != 3 {
		t.Fatalf("physical reads grew on hit: %d", f.Stats().Reads)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	f := New(8)
	var locs [][2]int
	for i := 0; i < 5; i++ {
		first, count := f.Append([]byte{byte(i), 0, 0, 0, 0, 0, 0, 0})
		locs = append(locs, [2]int{first, count})
	}
	bp, _ := NewBufferPool(f, 2) // holds 2 of 5 pages
	// Touch pages 0, 1, 2: page 0 evicted.
	for i := 0; i < 3; i++ {
		if _, err := bp.Page(locs[i][0]); err != nil {
			t.Fatal(err)
		}
	}
	f.ResetStats()
	if _, err := bp.Page(locs[0][0]); err != nil { // must miss again
		t.Fatal(err)
	}
	if f.Stats().Reads != 1 {
		t.Fatalf("evicted page re-read should be physical, reads=%d", f.Stats().Reads)
	}
	// Most recent (page 2) still cached.
	f.ResetStats()
	if _, err := bp.Page(locs[2][0]); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Reads != 0 {
		t.Fatalf("MRU page should hit, reads=%d", f.Stats().Reads)
	}
}

func TestBufferPoolReadMatchesFile(t *testing.T) {
	f := New(8)
	data := []byte("hello across several pages!")
	first, count := f.Append(data)
	bp, _ := NewBufferPool(f, 4)
	got, err := bp.Read(first, count)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("pooled read = %q", got)
	}
}

func TestBufferPoolBounds(t *testing.T) {
	f := New(8)
	f.Append([]byte("x"))
	bp, _ := NewBufferPool(f, 2)
	if _, err := bp.Page(-1); err == nil {
		t.Error("negative page should fail")
	}
	if _, err := bp.Page(9); err == nil {
		t.Error("out-of-range page should fail")
	}
	if _, err := bp.View(0, 5); err == nil {
		t.Error("out-of-range view should fail")
	}
}

func TestBufferPoolConcurrentReads(t *testing.T) {
	f := New(8)
	var firsts []int
	for i := 0; i < 20; i++ {
		first, _ := f.Append(bytes.Repeat([]byte{byte(i)}, 8))
		firsts = append(firsts, first)
	}
	bp, _ := NewBufferPool(f, 5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pg, err := bp.Page(firsts[(i*7+w)%len(firsts)])
				if err != nil || len(pg) != 8 {
					t.Errorf("concurrent page read failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	h, m := bp.HitsMisses()
	if h+m != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", h+m, 8*200)
	}
	bp.ResetStats()
	if h, m := bp.HitsMisses(); h != 0 || m != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}
