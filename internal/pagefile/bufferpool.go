package pagefile

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// frame is one buffer-pool slot: a cached page plus its replacement
// state. Over a Stable backing the frame borrows the backing's own page
// buffer (zero copy, automatically coherent with in-place Overwrite);
// over a DiskFile the frame owns a pageSize buffer that is refilled on
// every miss, which is why readers pin frames for the duration of use.
type frame struct {
	page int  // page index currently cached, -1 if empty
	ref  bool // clock reference bit: set on access, cleared by the sweep
	pin  int  // active ViewInto readers; pinned frames are never evicted
	buf  []byte
}

// BufferPool caches pages of a Backing with clock (second-chance)
// eviction. A hit serves the page without charging the backing's read
// counter; a miss charges one physical read and caches the page —
// reproducing the buffer-pool effect the paper's experiments assumed when
// counting disk accesses. Over a DiskFile the pool is what makes
// larger-than-RAM stores workable: only about capacity pages are resident
// at once.
//
// The 1997 system ran over a real buffer manager; with the paper's 1067 x
// 128 relation occupying ~2 MB, its nested-loop joins mostly hit the pool
// after the first pass. The buffer-pool ablation quantifies exactly that:
// logical page requests vs physical reads.
//
// Pinning: over a non-stable backing ViewInto pins every page of the
// record and the views stay valid until the matching Release; pinned
// frames are never chosen for eviction. If every frame is pinned when a
// miss needs a victim, the pool temporarily overflows capacity rather
// than failing — residency is bounded by capacity plus the peak number of
// concurrently pinned pages. Over a Stable backing pinning is a no-op
// (views reference the backing's own long-lived buffers), which keeps
// memory-pool callers that never Release working unchanged.
//
// BufferPool is safe for concurrent reads; Overwrite requires the same
// external write synchronization as the backing itself.
type BufferPool struct {
	backing  Backing
	stable   bool
	capacity int

	mu     sync.Mutex
	frames map[int]*frame // page index -> resident frame
	clock  []*frame
	hand   int
	pinned int // total outstanding pin references

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewBufferPool wraps a backing with a pool holding up to capacity pages.
func NewBufferPool(b Backing, capacity int) (*BufferPool, error) {
	if b == nil {
		return nil, fmt.Errorf("pagefile: buffer pool needs a backing")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("pagefile: buffer pool capacity must be >= 1, got %d", capacity)
	}
	return &BufferPool{
		backing:  b,
		stable:   b.Stable(),
		capacity: capacity,
		frames:   make(map[int]*frame, capacity),
		clock:    make([]*frame, 0, capacity),
	}, nil
}

// Capacity returns the pool's page capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Backing returns the storage underneath the pool.
func (bp *BufferPool) Backing() Backing { return bp.backing }

// HitsMisses returns the accumulated hit and miss counts.
func (bp *BufferPool) HitsMisses() (hits, misses int64) {
	return bp.hits.Load(), bp.misses.Load()
}

// Evictions returns the number of cached pages displaced to make room.
func (bp *BufferPool) Evictions() int64 { return bp.evictions.Load() }

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// Pinned returns the total number of outstanding pin references.
func (bp *BufferPool) Pinned() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.pinned
}

// ResetStats zeroes the hit/miss/eviction counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
}

// page returns the cached contents of page i, faulting it in on a miss.
// With pin set (and a non-stable backing) the frame's pin count is raised
// and the caller must release it.
func (bp *BufferPool) page(i int, pin bool) ([]byte, error) {
	if i < 0 || i >= bp.backing.NumPages() {
		return nil, fmt.Errorf("pagefile: page %d out of range of %d pages", i, bp.backing.NumPages())
	}
	bp.mu.Lock()
	if f, ok := bp.frames[i]; ok {
		f.ref = true
		if pin && !bp.stable {
			f.pin++
			bp.pinned++
		}
		bp.mu.Unlock()
		bp.hits.Add(1)
		return f.buf, nil
	}
	f := bp.victimLocked()
	// Fault the page in while holding the pool lock: concurrent misses on
	// the same page stay coherent (exactly one frame per page) at the cost
	// of serialising faults. Per-frame latches are the upgrade path if
	// fault concurrency ever matters more than simplicity here.
	buf, err := bp.backing.ReadPage(i, f.buf[:0])
	if err != nil {
		f.page = -1
		bp.mu.Unlock()
		return nil, err
	}
	f.buf = buf
	f.page = i
	f.ref = true
	f.pin = 0
	if pin && !bp.stable {
		f.pin = 1
		bp.pinned++
	}
	bp.frames[i] = f
	bp.mu.Unlock()
	bp.misses.Add(1)
	return buf, nil
}

// victimLocked returns a free frame, evicting an unpinned page via the
// clock sweep when the pool is full. Called with bp.mu held.
func (bp *BufferPool) victimLocked() *frame {
	if len(bp.clock) < bp.capacity {
		f := bp.newFrame()
		bp.clock = append(bp.clock, f)
		return f
	}
	// Second-chance sweep: two full passes guarantee an unpinned frame is
	// found if one exists (the first pass may only clear reference bits).
	for sweep := 0; sweep < 2*len(bp.clock); sweep++ {
		f := bp.clock[bp.hand]
		bp.hand = (bp.hand + 1) % len(bp.clock)
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.page >= 0 {
			delete(bp.frames, f.page)
			bp.evictions.Add(1)
		}
		return f
	}
	// Every frame is pinned: overflow past capacity instead of failing.
	f := bp.newFrame()
	bp.clock = append(bp.clock, f)
	return f
}

func (bp *BufferPool) newFrame() *frame {
	f := &frame{page: -1}
	if !bp.stable {
		f.buf = make([]byte, 0, bp.backing.PageSize())
	}
	return f
}

// release drops one pin reference on page i. No-op over Stable backings
// and for pages that hold no pin (robust against double release). When
// the pool has overflowed capacity (every frame was pinned at some miss),
// fully released frames are retired immediately so residency shrinks back
// to capacity.
func (bp *BufferPool) release(i int) {
	if bp.stable {
		return
	}
	bp.mu.Lock()
	if f, ok := bp.frames[i]; ok && f.pin > 0 {
		f.pin--
		bp.pinned--
		if f.pin == 0 && len(bp.clock) > bp.capacity {
			bp.retireLocked(f)
		}
	}
	bp.mu.Unlock()
}

// retireLocked evicts f and removes its frame from the clock entirely
// (the shrink path after a pin-overflow episode). Called with bp.mu held.
func (bp *BufferPool) retireLocked(f *frame) {
	for i, g := range bp.clock {
		if g == f {
			last := len(bp.clock) - 1
			bp.clock[i] = bp.clock[last]
			bp.clock[last] = nil
			bp.clock = bp.clock[:last]
			if bp.hand >= len(bp.clock) {
				bp.hand = 0
			}
			break
		}
	}
	if f.page >= 0 {
		delete(bp.frames, f.page)
		bp.evictions.Add(1)
	}
}

// Page returns a read-only view of one page through the pool without
// pinning it. Over a non-stable backing the buffer is only guaranteed
// until the next pool operation; prefer ViewInto + Release for held
// reads.
func (bp *BufferPool) Page(i int) ([]byte, error) {
	return bp.page(i, false)
}

// View returns read-only views of a record's pages through the pool,
// charging physical reads only for misses. Over a non-stable backing the
// pages are pinned until Release(firstPage, pageCount).
func (bp *BufferPool) View(firstPage, pageCount int) ([][]byte, error) {
	return bp.ViewInto(firstPage, pageCount, nil)
}

// ViewInto is View appending the page views to buf (pass buf[:0] to reuse
// its backing array), so steady-state readers allocate nothing. Over a
// non-stable backing every returned page is pinned; the caller must call
// Release(firstPage, pageCount) when done with the views.
func (bp *BufferPool) ViewInto(firstPage, pageCount int, buf [][]byte) ([][]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > bp.backing.NumPages() {
		return nil, fmt.Errorf("pagefile: view [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, bp.backing.NumPages())
	}
	for i := 0; i < pageCount; i++ {
		pg, err := bp.page(firstPage+i, true)
		if err != nil {
			// Unpin the prefix already pinned.
			for j := 0; j < i; j++ {
				bp.release(firstPage + j)
			}
			return nil, err
		}
		buf = append(buf, pg)
	}
	return buf, nil
}

// Release drops the pins taken by a ViewInto over the same page range.
// The views must not be used after Release. No-op over Stable backings.
func (bp *BufferPool) Release(firstPage, pageCount int) {
	if bp.stable {
		return
	}
	for i := firstPage; i < firstPage+pageCount; i++ {
		bp.release(i)
	}
}

// Read returns the concatenated contents of a record's pages through the
// pool (copying, like File.Read).
func (bp *BufferPool) Read(firstPage, pageCount int) ([]byte, error) {
	return bp.ReadInto(firstPage, pageCount, nil)
}

// ReadInto is Read appending the record bytes to buf (pass buf[:0] to
// reuse its backing array). Pages are pinned only for the duration of the
// copy, so the result is safe to hold indefinitely.
func (bp *BufferPool) ReadInto(firstPage, pageCount int, buf []byte) ([]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > bp.backing.NumPages() {
		return nil, fmt.Errorf("pagefile: read [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, bp.backing.NumPages())
	}
	for i := firstPage; i < firstPage+pageCount; i++ {
		pg, err := bp.page(i, true)
		if err != nil {
			return nil, err
		}
		buf = append(buf, pg...)
		bp.release(i)
	}
	return buf, nil
}

// Overwrite writes through the pool: the backing is updated first, then
// any cached frames for the record are refreshed so later hits observe
// the new contents. Requires the same external write synchronization as
// the backing itself.
func (bp *BufferPool) Overwrite(firstPage, pageCount int, data []byte) error {
	if err := bp.backing.Overwrite(firstPage, pageCount, data); err != nil {
		return err
	}
	if bp.stable {
		// Frames alias the backing's own page buffers; already coherent.
		return nil
	}
	bp.mu.Lock()
	off := 0
	for i := firstPage; i < firstPage+pageCount; i++ {
		n := bp.backing.PageLen(i)
		if f, ok := bp.frames[i]; ok {
			copy(f.buf, data[off:off+n])
		}
		off += n
	}
	bp.mu.Unlock()
	return nil
}
