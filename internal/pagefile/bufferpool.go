package pagefile

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufferPool is an LRU cache of pages over a File. A hit serves the page
// without charging the file's read counter; a miss charges one read and
// caches the page. The pool caches page *indices*, not copies: every hit
// re-reads through the file's live page buffer, so cached views stay
// coherent both for the append-only path and for in-place Overwrite (the
// streaming append path rewrites records under the owner's write lock).
//
// The 1997 system ran over a real buffer manager; with the paper's 1067 x
// 128 relation occupying ~2 MB, its nested-loop joins mostly hit the pool
// after the first pass. The buffer-pool ablation quantifies exactly that:
// logical page requests vs physical reads.
//
// BufferPool is safe for concurrent use.
type BufferPool struct {
	file     *File
	capacity int

	mu      sync.Mutex
	entries map[int]*list.Element
	lru     *list.List // front = most recently used; values are int page indices

	hits   atomic.Int64
	misses atomic.Int64
}

// NewBufferPool wraps a file with an LRU pool holding up to capacity pages.
func NewBufferPool(f *File, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pagefile: buffer pool capacity must be >= 1, got %d", capacity)
	}
	return &BufferPool{
		file:     f,
		capacity: capacity,
		entries:  make(map[int]*list.Element),
		lru:      list.New(),
	}, nil
}

// Capacity returns the pool's page capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// HitsMisses returns the accumulated hit and miss counts.
func (bp *BufferPool) HitsMisses() (hits, misses int64) {
	return bp.hits.Load(), bp.misses.Load()
}

// ResetStats zeroes the hit/miss counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
}

// Page returns a read-only view of one page through the pool.
func (bp *BufferPool) Page(i int) ([]byte, error) {
	if i < 0 || i >= len(bp.file.pages) {
		return nil, fmt.Errorf("pagefile: page %d out of range of %d pages", i, len(bp.file.pages))
	}
	bp.mu.Lock()
	if el, ok := bp.entries[i]; ok {
		bp.lru.MoveToFront(el)
		bp.mu.Unlock()
		bp.hits.Add(1)
		return bp.file.pages[i], nil
	}
	// Miss: charge a physical read and cache the page index.
	if bp.lru.Len() >= bp.capacity {
		oldest := bp.lru.Back()
		bp.lru.Remove(oldest)
		delete(bp.entries, oldest.Value.(int))
	}
	bp.entries[i] = bp.lru.PushFront(i)
	bp.mu.Unlock()
	bp.misses.Add(1)
	bp.file.reads.Add(1)
	return bp.file.pages[i], nil
}

// View returns read-only views of a record's pages through the pool,
// charging physical reads only for misses.
func (bp *BufferPool) View(firstPage, pageCount int) ([][]byte, error) {
	return bp.ViewInto(firstPage, pageCount, nil)
}

// ViewInto is View appending the page views to buf (pass buf[:0] to reuse
// its backing array), so steady-state readers allocate nothing.
func (bp *BufferPool) ViewInto(firstPage, pageCount int, buf [][]byte) ([][]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(bp.file.pages) {
		return nil, fmt.Errorf("pagefile: view [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(bp.file.pages))
	}
	for i := 0; i < pageCount; i++ {
		pg, err := bp.Page(firstPage + i)
		if err != nil {
			return nil, err
		}
		buf = append(buf, pg)
	}
	return buf, nil
}

// Read returns the concatenated contents of a record's pages through the
// pool (copying, like File.Read).
func (bp *BufferPool) Read(firstPage, pageCount int) ([]byte, error) {
	pages, err := bp.View(firstPage, pageCount)
	if err != nil {
		return nil, err
	}
	var size int
	for _, pg := range pages {
		size += len(pg)
	}
	out := make([]byte, 0, size)
	for _, pg := range pages {
		out = append(out, pg...)
	}
	return out, nil
}
