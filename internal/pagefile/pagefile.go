// Package pagefile simulates the paged disk storage underneath the paper's
// experiments. The original system measured query cost partly in disk page
// accesses; this in-memory substitute preserves that accounting: every page
// read and write is counted, records larger than a page span contiguous
// pages (each touch of a spanned record costs its page count), and
// sequential scans touch every allocated page exactly once.
package pagefile

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// DefaultPageSize is 4 KiB, the page size assumed throughout the
// experiment harness.
const DefaultPageSize = 4096

// Stats counts page-level I/O.
type Stats struct {
	Reads  int64
	Writes int64
}

// File is an append-only collection of fixed-size pages. Reads (including
// zero-copy views) are safe to perform concurrently; writes require
// external synchronization, like the structures above it.
type File struct {
	pageSize int
	pages    [][]byte
	reads    atomic.Int64
	writes   atomic.Int64
}

// New creates a page file. pageSize <= 0 selects DefaultPageSize.
func New(pageSize int) *File {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &File{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (f *File) PageSize() int { return f.pageSize }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() int { return len(f.pages) }

// Stats returns the accumulated I/O counters.
func (f *File) Stats() Stats {
	return Stats{Reads: f.reads.Load(), Writes: f.writes.Load()}
}

// ResetStats zeroes the I/O counters (each experiment run starts fresh).
func (f *File) ResetStats() {
	f.reads.Store(0)
	f.writes.Store(0)
}

// Append writes data across as many fresh pages as needed and returns the
// index of the first page and the number of pages used.
func (f *File) Append(data []byte) (firstPage, pageCount int) {
	if len(data) == 0 {
		// Zero-length records still occupy a slot on one page.
		f.pages = append(f.pages, make([]byte, 0, f.pageSize))
		f.writes.Add(1)
		return len(f.pages) - 1, 1
	}
	firstPage = len(f.pages)
	for off := 0; off < len(data); off += f.pageSize {
		end := off + f.pageSize
		if end > len(data) {
			end = len(data)
		}
		page := make([]byte, end-off)
		copy(page, data[off:end])
		f.pages = append(f.pages, page)
		f.writes.Add(1)
		pageCount++
	}
	return firstPage, pageCount
}

// ErrSizeMismatch reports an Overwrite whose payload does not match the
// record's existing on-page footprint; callers fall back to appending a
// fresh copy (the old pages stay orphaned until compaction).
var ErrSizeMismatch = errors.New("pagefile: overwrite size mismatch")

// Overwrite replaces the contents of an existing record's pages in place,
// charging one write per page. The payload must have exactly the record's
// current byte size (same-length records always do, which is what the
// streaming append path relies on); otherwise ErrSizeMismatch is returned
// and nothing changes. Like Append, Overwrite requires external
// synchronization against concurrent readers: the page slices are mutated
// directly, so any view handed out earlier observes the new contents.
func (f *File) Overwrite(firstPage, pageCount int, data []byte) error {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(f.pages) {
		return fmt.Errorf("pagefile: overwrite [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(f.pages))
	}
	var size int
	for i := firstPage; i < firstPage+pageCount; i++ {
		size += len(f.pages[i])
	}
	if size != len(data) {
		return fmt.Errorf("%w: record holds %d bytes, payload has %d", ErrSizeMismatch, size, len(data))
	}
	off := 0
	for i := firstPage; i < firstPage+pageCount; i++ {
		off += copy(f.pages[i], data[off:])
		f.writes.Add(1)
	}
	return nil
}

// View returns direct references to the pages of a record (no copying),
// charging one read per page. The caller must treat the returned slices as
// read-only. This models what the original system did: compute distances
// straight off the buffer-pool page, so that early-abandoned comparisons
// skip not just arithmetic but also record deserialization.
func (f *File) View(firstPage, pageCount int) ([][]byte, error) {
	return f.ViewInto(firstPage, pageCount, nil)
}

// ViewInto is View appending the page views to buf (pass buf[:0] to reuse
// its backing array), so steady-state readers allocate nothing.
func (f *File) ViewInto(firstPage, pageCount int, buf [][]byte) ([][]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(f.pages) {
		return nil, fmt.Errorf("pagefile: view [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(f.pages))
	}
	for i := 0; i < pageCount; i++ {
		buf = append(buf, f.pages[firstPage+i])
	}
	f.reads.Add(int64(pageCount))
	return buf, nil
}

// Read returns the concatenated contents of pageCount pages starting at
// firstPage, charging one read per page.
func (f *File) Read(firstPage, pageCount int) ([]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(f.pages) {
		return nil, fmt.Errorf("pagefile: read [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(f.pages))
	}
	var size int
	for i := firstPage; i < firstPage+pageCount; i++ {
		size += len(f.pages[i])
	}
	out := make([]byte, 0, size)
	for i := firstPage; i < firstPage+pageCount; i++ {
		out = append(out, f.pages[i]...)
	}
	f.reads.Add(int64(pageCount))
	return out, nil
}
