// Package pagefile provides the paged storage underneath the paper's
// experiments. The original system measured query cost partly in disk page
// accesses; both backings preserve that accounting: every page read and
// write is counted, records larger than a page span contiguous pages (each
// touch of a spanned record costs its page count), and sequential scans
// touch every allocated page exactly once.
//
// Two backings implement the same page-addressed surface: the in-memory
// File (the original simulation, every page resident) and the disk-backed
// DiskFile (pages live in an os.File and are read on demand, so a store
// can exceed RAM). A BufferPool caches pages of either backing with clock
// eviction and pin counts; over a DiskFile it is the only safe read path,
// because page frames are reused after eviction.
package pagefile

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// DefaultPageSize is 4 KiB, the page size assumed throughout the
// experiment harness.
const DefaultPageSize = 4096

// Stats counts page-level I/O.
type Stats struct {
	Reads  int64
	Writes int64
}

// Backing is the page-addressed storage surface shared by the in-memory
// File and the disk-backed DiskFile: fixed-size pages appended in record
// granules, overwritten in place, and read one page at a time. A
// BufferPool serves cached reads over any Backing.
type Backing interface {
	PageSize() int
	NumPages() int
	// PageLen returns the payload length of page i (the final page of a
	// record may be shorter than PageSize).
	PageLen(i int) int
	Stats() Stats
	ResetStats()
	// AppendPages writes data across as many fresh pages as needed,
	// returning the first page index and the page count.
	AppendPages(data []byte) (firstPage, pageCount int, err error)
	// Overwrite replaces the contents of an existing record's pages in
	// place; the payload must match the record's byte size exactly
	// (ErrSizeMismatch otherwise).
	Overwrite(firstPage, pageCount int, data []byte) error
	// ReadPage returns the contents of page i, charging one physical
	// read. A memory File returns its live page buffer (zero copy, dst
	// ignored); a DiskFile fills dst (grown as needed) and returns it.
	ReadPage(i int, dst []byte) ([]byte, error)
	// Stable reports whether ReadPage returns long-lived references into
	// the backing itself (true for File). When false, returned buffers
	// are only valid until the caller reuses dst — a BufferPool's frames
	// in practice — so readers must hold pages pinned while using them.
	Stable() bool
}

// File is an append-only in-memory collection of fixed-size pages. Reads
// (including zero-copy views) are safe to perform concurrently; writes
// require external synchronization, like the structures above it.
type File struct {
	pageSize int
	pages    [][]byte
	slab     []byte // arena the next page buffers are carved from
	reads    atomic.Int64
	writes   atomic.Int64
}

// slabPages is how many pages' worth of buffer one arena allocation
// holds. Carving page buffers out of shared slabs instead of allocating
// each page separately keeps a bulk load from creating one GC object per
// page — at 2,000 series × 3 pages that is thousands of small objects
// whose allocation and sweep cost shows up directly in cold-start time.
const slabPages = 64

var _ Backing = (*File)(nil)

// New creates a page file. pageSize <= 0 selects DefaultPageSize.
func New(pageSize int) *File {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &File{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (f *File) PageSize() int { return f.pageSize }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() int { return len(f.pages) }

// PageLen returns the payload length of page i.
func (f *File) PageLen(i int) int { return len(f.pages[i]) }

// Stable reports that File pages are long-lived in-memory buffers.
func (f *File) Stable() bool { return true }

// Stats returns the accumulated I/O counters.
func (f *File) Stats() Stats {
	return Stats{Reads: f.reads.Load(), Writes: f.writes.Load()}
}

// ResetStats zeroes the I/O counters (each experiment run starts fresh).
func (f *File) ResetStats() {
	f.reads.Store(0)
	f.writes.Store(0)
}

// Append writes data across as many fresh pages as needed and returns the
// index of the first page and the number of pages used.
func (f *File) Append(data []byte) (firstPage, pageCount int) {
	if len(data) == 0 {
		// Zero-length records still occupy a slot on one page.
		f.pages = append(f.pages, make([]byte, 0, f.pageSize))
		f.writes.Add(1)
		return len(f.pages) - 1, 1
	}
	firstPage = len(f.pages)
	for off := 0; off < len(data); off += f.pageSize {
		end := off + f.pageSize
		if end > len(data) {
			end = len(data)
		}
		page := f.alloc(end - off)
		copy(page, data[off:end])
		f.pages = append(f.pages, page)
		f.writes.Add(1)
		pageCount++
	}
	return firstPage, pageCount
}

// alloc carves an n-byte page buffer out of the current slab, starting a
// fresh slab when the remainder is too small (the sliver left behind is
// abandoned to the garbage collector with the rest of the slab once its
// pages die, e.g. after Compact swaps in a new file).
func (f *File) alloc(n int) []byte {
	if len(f.slab) < n {
		f.slab = make([]byte, slabPages*f.pageSize)
	}
	b := f.slab[:n:n]
	f.slab = f.slab[n:]
	return b
}

// AppendOwned adopts data as page payloads without copying: the record is
// sliced in place into page-size chunks that become the file's pages, so
// a bulk load whose input buffer already has the record layout (a
// snapshot read) skips both the page allocation and the copy. Ownership
// of data's memory transfers to the file — the caller must not touch it
// again (in-place Overwrite mutates it). Like Delete'd records, the
// memory is only reclaimed wholesale when compaction rewrites the file.
func (f *File) AppendOwned(data []byte) (firstPage, pageCount int) {
	if len(data) == 0 {
		return f.Append(data)
	}
	firstPage = len(f.pages)
	for off := 0; off < len(data); off += f.pageSize {
		end := off + f.pageSize
		if end > len(data) {
			end = len(data)
		}
		f.pages = append(f.pages, data[off:end:end])
		f.writes.Add(1)
		pageCount++
	}
	return firstPage, pageCount
}

// AppendPages is Append behind the Backing surface (memory appends cannot
// fail).
func (f *File) AppendPages(data []byte) (firstPage, pageCount int, err error) {
	firstPage, pageCount = f.Append(data)
	return firstPage, pageCount, nil
}

// ReadPage returns the live buffer of page i, charging one read. dst is
// ignored (File is a Stable backing).
func (f *File) ReadPage(i int, dst []byte) ([]byte, error) {
	if i < 0 || i >= len(f.pages) {
		return nil, fmt.Errorf("pagefile: page %d out of range of %d pages", i, len(f.pages))
	}
	f.reads.Add(1)
	return f.pages[i], nil
}

// ErrSizeMismatch reports an Overwrite whose payload does not match the
// record's existing on-page footprint; callers fall back to appending a
// fresh copy (the old pages stay orphaned until compaction).
var ErrSizeMismatch = errors.New("pagefile: overwrite size mismatch")

// Overwrite replaces the contents of an existing record's pages in place,
// charging one write per page. The payload must have exactly the record's
// current byte size (same-length records always do, which is what the
// streaming append path relies on); otherwise ErrSizeMismatch is returned
// and nothing changes. Like Append, Overwrite requires external
// synchronization against concurrent readers: the page slices are mutated
// directly, so any view handed out earlier observes the new contents.
func (f *File) Overwrite(firstPage, pageCount int, data []byte) error {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(f.pages) {
		return fmt.Errorf("pagefile: overwrite [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(f.pages))
	}
	var size int
	for i := firstPage; i < firstPage+pageCount; i++ {
		size += len(f.pages[i])
	}
	if size != len(data) {
		return fmt.Errorf("%w: record holds %d bytes, payload has %d", ErrSizeMismatch, size, len(data))
	}
	off := 0
	for i := firstPage; i < firstPage+pageCount; i++ {
		off += copy(f.pages[i], data[off:])
		f.writes.Add(1)
	}
	return nil
}

// View returns direct references to the pages of a record (no copying),
// charging one read per page. The caller must treat the returned slices as
// read-only. This models what the original system did: compute distances
// straight off the buffer-pool page, so that early-abandoned comparisons
// skip not just arithmetic but also record deserialization.
func (f *File) View(firstPage, pageCount int) ([][]byte, error) {
	return f.ViewInto(firstPage, pageCount, nil)
}

// ViewInto is View appending the page views to buf (pass buf[:0] to reuse
// its backing array), so steady-state readers allocate nothing.
func (f *File) ViewInto(firstPage, pageCount int, buf [][]byte) ([][]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(f.pages) {
		return nil, fmt.Errorf("pagefile: view [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(f.pages))
	}
	for i := 0; i < pageCount; i++ {
		buf = append(buf, f.pages[firstPage+i])
	}
	f.reads.Add(int64(pageCount))
	return buf, nil
}

// Read returns the concatenated contents of pageCount pages starting at
// firstPage, charging one read per page.
func (f *File) Read(firstPage, pageCount int) ([]byte, error) {
	return f.ReadInto(firstPage, pageCount, nil)
}

// ReadInto is Read appending the record bytes to buf (pass buf[:0] to
// reuse its backing array), so looping readers allocate nothing once the
// buffer has grown.
func (f *File) ReadInto(firstPage, pageCount int, buf []byte) ([]byte, error) {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(f.pages) {
		return nil, fmt.Errorf("pagefile: read [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(f.pages))
	}
	for i := firstPage; i < firstPage+pageCount; i++ {
		buf = append(buf, f.pages[i]...)
	}
	f.reads.Add(int64(pageCount))
	return buf, nil
}
