package pagefile

import (
	"bytes"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	f := New(0)
	if f.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d", f.PageSize())
	}
	if f.NumPages() != 0 {
		t.Fatalf("fresh file has %d pages", f.NumPages())
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	f := New(16)
	data := []byte("hello, page file")
	first, count := f.Append(data)
	if first != 0 || count != 1 {
		t.Fatalf("Append = %d, %d", first, count)
	}
	got, err := f.Read(first, count)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q", got)
	}
}

func TestSpannedRecord(t *testing.T) {
	f := New(8)
	data := make([]byte, 20) // 3 pages at size 8
	for i := range data {
		data[i] = byte(i)
	}
	first, count := f.Append(data)
	if count != 3 {
		t.Fatalf("pageCount = %d, want 3", count)
	}
	got, err := f.Read(first, count)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spanned record corrupted")
	}
	if f.Stats().Reads != 3 || f.Stats().Writes != 3 {
		t.Fatalf("stats = %+v, want 3 reads / 3 writes", f.Stats())
	}
}

func TestMultipleRecords(t *testing.T) {
	f := New(8)
	a, ac := f.Append([]byte("aaaa"))
	b, bc := f.Append([]byte("bbbbbbbbbb")) // spans 2
	got, _ := f.Read(a, ac)
	if string(got) != "aaaa" {
		t.Fatalf("a = %q", got)
	}
	got, _ = f.Read(b, bc)
	if string(got) != "bbbbbbbbbb" {
		t.Fatalf("b = %q", got)
	}
}

func TestEmptyRecord(t *testing.T) {
	f := New(8)
	first, count := f.Append(nil)
	if count != 1 {
		t.Fatalf("empty record should take one page slot, got %d", count)
	}
	got, err := f.Read(first, count)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty record read = %q, %v", got, err)
	}
}

func TestReadOutOfRange(t *testing.T) {
	f := New(8)
	f.Append([]byte("x"))
	for _, tc := range [][2]int{{-1, 1}, {0, 0}, {0, 2}, {5, 1}} {
		if _, err := f.Read(tc[0], tc[1]); err == nil {
			t.Errorf("Read(%d, %d) should fail", tc[0], tc[1])
		}
	}
}

func TestResetStats(t *testing.T) {
	f := New(8)
	first, count := f.Append([]byte("abc"))
	f.Read(first, count)
	f.ResetStats()
	if s := f.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}
