package pagefile

import (
	"fmt"
	"os"
	"sync/atomic"
)

// DiskFile is the disk-backed Backing: pages live in an os.File and are
// read on demand, so the store's working set — not the store — has to fit
// in RAM. It exposes the same page-addressed surface as the in-memory
// File, and the same concurrency contract (concurrent reads, externally
// synchronized writes). Only the per-page payload lengths are kept
// resident (4 bytes/page), everything else pages in through ReadPage —
// which callers reach through a BufferPool, never directly.
//
// The file is process-scratch, not a durability format: Open truncates,
// and the snapshot (TSQ3) remains the way a store persists. Disk backing
// exists so a running store can exceed RAM.
type DiskFile struct {
	f        *os.File
	path     string
	pageSize int
	// lens[i] is the payload length of page i; the slot on disk is
	// always pageSize bytes, tail pages are simply short. Appends grow
	// lens under the writer's external lock; readers only index pages
	// that were fully written before they learned the page number, so
	// the append-only slice is safe to read concurrently.
	lens   []int32
	reads  atomic.Int64
	writes atomic.Int64
}

var _ Backing = (*DiskFile)(nil)

// OpenDisk creates (truncating) the scratch page file at path.
// pageSize <= 0 selects DefaultPageSize.
func OpenDisk(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open disk backing: %w", err)
	}
	return &DiskFile{f: f, path: path, pageSize: pageSize}, nil
}

// PageSize returns the page size in bytes.
func (d *DiskFile) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *DiskFile) NumPages() int { return len(d.lens) }

// PageLen returns the payload length of page i.
func (d *DiskFile) PageLen(i int) int { return int(d.lens[i]) }

// Stable reports that DiskFile reads land in caller buffers, which are
// reused; readers must pin pages through a BufferPool while using them.
func (d *DiskFile) Stable() bool { return false }

// Path returns the backing file's path.
func (d *DiskFile) Path() string { return d.path }

// Stats returns the accumulated I/O counters.
func (d *DiskFile) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the I/O counters.
func (d *DiskFile) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}

// Close closes and removes the scratch file.
func (d *DiskFile) Close() error {
	err := d.f.Close()
	if rmErr := os.Remove(d.path); err == nil {
		err = rmErr
	}
	return err
}

// AppendPages writes data across as many fresh pages as needed and
// returns the index of the first page and the number of pages used. Each
// page occupies a full pageSize slot on disk; a short tail page is
// zero-padded so page offsets stay a pure multiply.
func (d *DiskFile) AppendPages(data []byte) (firstPage, pageCount int, err error) {
	firstPage = len(d.lens)
	if len(data) == 0 {
		if err := d.writeSlot(firstPage, nil); err != nil {
			return 0, 0, err
		}
		d.lens = append(d.lens, 0)
		d.writes.Add(1)
		return firstPage, 1, nil
	}
	for off := 0; off < len(data); off += d.pageSize {
		end := off + d.pageSize
		if end > len(data) {
			end = len(data)
		}
		if err := d.writeSlot(firstPage+pageCount, data[off:end]); err != nil {
			// Roll back the half-appended record so the next append
			// reuses the slots.
			return 0, 0, err
		}
		d.lens = append(d.lens, int32(end-off))
		d.writes.Add(1)
		pageCount++
	}
	return firstPage, pageCount, nil
}

// writeSlot writes payload into page slot i, padding the slot to a full
// pageSize so later slots start at i*pageSize.
func (d *DiskFile) writeSlot(i int, payload []byte) error {
	off := int64(i) * int64(d.pageSize)
	if len(payload) > 0 {
		if _, err := d.f.WriteAt(payload, off); err != nil {
			return fmt.Errorf("pagefile: write page %d: %w", i, err)
		}
	}
	if len(payload) < d.pageSize {
		// Extend the file to the slot boundary; the gap reads as zeros.
		if err := d.f.Truncate(off + int64(d.pageSize)); err != nil {
			return fmt.Errorf("pagefile: extend page %d: %w", i, err)
		}
	}
	return nil
}

// Overwrite replaces the contents of an existing record's pages in place,
// charging one write per page. The payload must match the record's byte
// size exactly (ErrSizeMismatch otherwise), mirroring File.Overwrite.
func (d *DiskFile) Overwrite(firstPage, pageCount int, data []byte) error {
	if firstPage < 0 || pageCount < 1 || firstPage+pageCount > len(d.lens) {
		return fmt.Errorf("pagefile: overwrite [%d, %d) out of range of %d pages", firstPage, firstPage+pageCount, len(d.lens))
	}
	var size int
	for i := firstPage; i < firstPage+pageCount; i++ {
		size += int(d.lens[i])
	}
	if size != len(data) {
		return fmt.Errorf("%w: record holds %d bytes, payload has %d", ErrSizeMismatch, size, len(data))
	}
	off := 0
	for i := firstPage; i < firstPage+pageCount; i++ {
		n := int(d.lens[i])
		if n > 0 {
			if _, err := d.f.WriteAt(data[off:off+n], int64(i)*int64(d.pageSize)); err != nil {
				return fmt.Errorf("pagefile: overwrite page %d: %w", i, err)
			}
		}
		off += n
		d.writes.Add(1)
	}
	return nil
}

// ReadPage fills dst (grown as needed) with the payload of page i,
// charging one physical read.
func (d *DiskFile) ReadPage(i int, dst []byte) ([]byte, error) {
	if i < 0 || i >= len(d.lens) {
		return nil, fmt.Errorf("pagefile: page %d out of range of %d pages", i, len(d.lens))
	}
	n := int(d.lens[i])
	if cap(dst) < n {
		dst = make([]byte, n, d.pageSize)
	}
	dst = dst[:n]
	if n > 0 {
		if _, err := d.f.ReadAt(dst, int64(i)*int64(d.pageSize)); err != nil {
			return nil, fmt.Errorf("pagefile: read page %d: %w", i, err)
		}
	}
	d.reads.Add(1)
	return dst, nil
}
