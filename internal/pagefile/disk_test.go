package pagefile

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func newDisk(t *testing.T, pageSize int) *DiskFile {
	t.Helper()
	d, err := OpenDisk(filepath.Join(t.TempDir(), "pages.db"), pageSize)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// record returns deterministic record bytes of the given length.
func record(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*31)
	}
	return b
}

func TestDiskFileRoundTrip(t *testing.T) {
	d := newDisk(t, 64)
	sizes := []int{1, 63, 64, 65, 128, 200, 0, 300}
	type loc struct{ first, count int }
	locs := make([]loc, len(sizes))
	for i, n := range sizes {
		first, count, err := d.AppendPages(record(byte(i), n))
		if err != nil {
			t.Fatalf("AppendPages(%d bytes): %v", n, err)
		}
		wantPages := (n + 63) / 64
		if n == 0 {
			wantPages = 1
		}
		if count != wantPages {
			t.Fatalf("record %d: got %d pages, want %d", i, count, wantPages)
		}
		locs[i] = loc{first, count}
	}
	pool, err := NewBufferPool(d, 4)
	if err != nil {
		t.Fatalf("NewBufferPool: %v", err)
	}
	for i, n := range sizes {
		got, err := pool.Read(locs[i].first, locs[i].count)
		if err != nil {
			t.Fatalf("Read record %d: %v", i, err)
		}
		if !bytes.Equal(got, record(byte(i), n)) {
			t.Fatalf("record %d: round-trip mismatch (%d bytes)", i, n)
		}
	}
}

func TestDiskFileOverwriteWriteThrough(t *testing.T) {
	d := newDisk(t, 32)
	orig := record(1, 80) // 3 pages: 32+32+16
	first, count, err := d.AppendPages(orig)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewBufferPool(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then overwrite through the pool.
	if _, err := pool.Read(first, count); err != nil {
		t.Fatal(err)
	}
	repl := record(9, 80)
	if err := pool.Overwrite(first, count, repl); err != nil {
		t.Fatalf("Overwrite: %v", err)
	}
	hits0, _ := pool.HitsMisses()
	got, err := pool.Read(first, count)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, repl) {
		t.Fatal("cached frames not refreshed by write-through Overwrite")
	}
	hits1, _ := pool.HitsMisses()
	if hits1-hits0 != int64(count) {
		t.Fatalf("re-read after Overwrite should hit the cache: got %d hits, want %d", hits1-hits0, count)
	}
	// And the backing itself must hold the new bytes (fresh pool = all misses).
	pool2, _ := NewBufferPool(d, 8)
	got2, err := pool2.Read(first, count)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, repl) {
		t.Fatal("backing file not updated by Overwrite")
	}
	// Size mismatch is rejected.
	if err := pool.Overwrite(first, count, record(3, 81)); err == nil {
		t.Fatal("Overwrite with wrong size should fail")
	}
}

func TestDiskPoolEvictionBounded(t *testing.T) {
	d := newDisk(t, 16)
	const pages = 64
	for i := 0; i < pages; i++ {
		if _, _, err := d.AppendPages(record(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := NewBufferPool(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Three sequential sweeps over 64 pages through an 8-page pool.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < pages; i++ {
			got, err := pool.Read(i, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, record(byte(i), 16)) {
				t.Fatalf("pass %d page %d: wrong contents after eviction recycling", pass, i)
			}
		}
	}
	if r := pool.Resident(); r > 8 {
		t.Fatalf("resident %d pages exceeds capacity 8 with nothing pinned", r)
	}
	if pool.Evictions() == 0 {
		t.Fatal("sequential sweeps over a small pool must evict")
	}
	hits, misses := pool.HitsMisses()
	if hits+misses != 3*pages {
		t.Fatalf("hits %d + misses %d != %d requests", hits, misses, 3*pages)
	}
	if pool.Pinned() != 0 {
		t.Fatalf("%d pins leaked by Read", pool.Pinned())
	}
}

// TestDiskPoolPinnedViewsSurviveEviction holds pinned views across reads
// that force eviction pressure and checks the views still carry their
// original bytes — i.e. pinned frames are never recycled.
func TestDiskPoolPinnedViewsSurviveEviction(t *testing.T) {
	d := newDisk(t, 16)
	const pages = 40
	for i := 0; i < pages; i++ {
		if _, _, err := d.AppendPages(record(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := NewBufferPool(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	views, err := pool.ViewInto(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Pinned() != 3 {
		t.Fatalf("pinned = %d, want 3", pool.Pinned())
	}
	// Churn every other page through the tiny pool.
	for pass := 0; pass < 2; pass++ {
		for i := 3; i < pages; i++ {
			if _, err := pool.Read(i, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, v := range views {
		if !bytes.Equal(v, record(byte(i), 16)) {
			t.Fatalf("pinned view %d corrupted by eviction churn", i)
		}
	}
	pool.Release(0, 3)
	if pool.Pinned() != 0 {
		t.Fatalf("pinned = %d after Release, want 0", pool.Pinned())
	}
	// Once released the pages are evictable again and residency shrinks
	// back under capacity on further churn.
	for i := 3; i < pages; i++ {
		if _, err := pool.Read(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if r := pool.Resident(); r > 4 {
		t.Fatalf("resident %d > capacity 4 after pins released", r)
	}
}

// TestDiskPoolAllPinnedOverflows pins more pages than the pool holds: the
// pool must overflow capacity rather than fail or recycle a pinned frame.
func TestDiskPoolAllPinnedOverflows(t *testing.T) {
	d := newDisk(t, 16)
	const pages = 6
	for i := 0; i < pages; i++ {
		if _, _, err := d.AppendPages(record(byte(i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := NewBufferPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	views, err := pool.ViewInto(0, pages, nil)
	if err != nil {
		t.Fatalf("ViewInto across all pages with tiny pool: %v", err)
	}
	for i, v := range views {
		if !bytes.Equal(v, record(byte(i), 16)) {
			t.Fatalf("view %d wrong while overflowed", i)
		}
	}
	if r := pool.Resident(); r != pages {
		t.Fatalf("resident = %d, want %d while all pinned", r, pages)
	}
	pool.Release(0, pages)
	if pool.Pinned() != 0 {
		t.Fatal("pins leaked")
	}
}

// TestBufferPoolEvictionStressRace hammers a tiny pool from many
// goroutines under -race: concurrent ViewInto readers verify their pinned
// views byte-for-byte while eviction churns, and the hit/miss ledger must
// exactly cover the logical requests with physical reads == misses.
func TestBufferPoolEvictionStressRace(t *testing.T) {
	d := newDisk(t, 32)
	const pages = 128
	for i := 0; i < pages; i++ {
		if _, _, err := d.AppendPages(record(byte(i), 32)); err != nil {
			t.Fatal(err)
		}
	}
	pool, err := NewBufferPool(d, 8) // capacity << pages
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()

	const (
		workers = 8
		rounds  = 400
		span    = 3 // pages per view
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var views [][]byte
			for r := 0; r < rounds; r++ {
				first := (w*31 + r*7) % (pages - span)
				var err error
				views, err = pool.ViewInto(first, span, views[:0])
				if err != nil {
					errc <- err
					return
				}
				for j, v := range views {
					if !bytes.Equal(v, record(byte(first+j), 32)) {
						errc <- fmt.Errorf("worker %d round %d: pinned view of page %d corrupted under eviction churn", w, r, first+j)
						pool.Release(first, span)
						return
					}
				}
				pool.Release(first, span)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	hits, misses := pool.HitsMisses()
	if total := int64(workers * rounds * span); hits+misses != total {
		t.Fatalf("hits %d + misses %d != %d logical requests", hits, misses, total)
	}
	if reads := d.Stats().Reads; reads != misses {
		t.Fatalf("physical reads %d != misses %d", reads, misses)
	}
	if pool.Pinned() != 0 {
		t.Fatalf("%d pins outstanding after all workers released", pool.Pinned())
	}
	if r := pool.Resident(); r > 8+workers*span {
		t.Fatalf("resident %d far exceeds capacity+pin bound", r)
	}
}
