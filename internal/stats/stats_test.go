package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if tm.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev: %v", s.StdDev)
	}
	if s.Median != 4.5 {
		t.Fatalf("median: %v", s.Median)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("odd median: %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.Count != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("Title", "col1", "column2", "c3")
	tbl.AddRow("a", 1.23456, 42)
	tbl.AddRow("longer cell", time.Duration(1500)*time.Millisecond, "x")
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	out := tbl.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "col1") {
		t.Fatalf("render: %q", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float formatting: %q", out)
	}
	if !strings.Contains(out, "1.5s") {
		t.Fatalf("duration formatting: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count %d: %q", len(lines), out)
	}
}

func TestTableDurationMinutes(t *testing.T) {
	tbl := NewTable("", "d")
	tbl.AddRow(2*time.Minute + 31*time.Second + 217*time.Millisecond)
	if !strings.Contains(tbl.String(), "2:31.217") {
		t.Fatalf("paper-style duration: %q", tbl.String())
	}
}

func TestFigure(t *testing.T) {
	fig := Figure{
		Title:  "Figure 8",
		XLabel: "Sequence Length",
		YLabel: "time (ms)",
		Series: []FigureSeries{
			{Label: "with transform", X: []float64{64, 128}, Y: []float64{1.5, 2.5}},
			{Label: "without", X: []float64{64, 128}, Y: []float64{1.2, 2.2}},
		},
	}
	out := fig.String()
	for _, want := range []string{"Figure 8", "Sequence Length", "with transform", "64", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure render missing %q:\n%s", want, out)
		}
	}
	empty := Figure{Title: "x"}
	if empty.String() == "" {
		t.Fatal("empty figure should render header")
	}
}
