// Package stats provides the small measurement and reporting utilities the
// experiment harness uses to regenerate the paper's figures and tables:
// wall-clock timers, aggregate summaries, and fixed-width text rendering of
// result tables and figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Timer measures wall-clock durations.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Summary aggregates a sample of float64 observations.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	Median         float64
	StdDev         float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// formatDuration renders durations in the paper's "min:sec.millis" style
// for values over a minute and compact units below.
func formatDuration(d time.Duration) string {
	if d >= time.Minute {
		m := int(d / time.Minute)
		rest := d - time.Duration(m)*time.Minute
		return fmt.Sprintf("%d:%06.3f", m, rest.Seconds())
	}
	return d.Round(time.Microsecond).String()
}

// FigureSeries holds one curve of a figure: a label and (x, y) points.
type FigureSeries struct {
	Label string
	X, Y  []float64
}

// Figure is a text rendering of a paper figure: multiple curves over a
// shared x axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []FigureSeries
}

// String renders the figure as an aligned data listing (one row per x,
// one column per curve), the textual equivalent of the paper's plots.
func (f *Figure) String() string {
	tbl := NewTable(fmt.Sprintf("%s  [y: %s]", f.Title, f.YLabel))
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	tbl.Headers = headers
	if len(f.Series) == 0 {
		return tbl.String()
	}
	for i := range f.Series[0].X {
		row := []interface{}{fmt.Sprintf("%g", f.Series[0].X[i])}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}
