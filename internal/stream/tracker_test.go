package stream

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/dft"
	"repro/internal/series"
)

const featureTol = 1e-9

func randomWalkWindow(r *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	v := 20 + 80*r.Float64()
	for i := range w {
		v += 8*r.Float64() - 4
		w[i] = v
	}
	return w
}

// TestTrackerMatchesRecomputation is the streaming-correctness property
// test: over long random append sequences — spanning many window
// wrap-arounds and internal resyncs — the incrementally maintained mean,
// standard deviation, and normal-form DFT coefficients must match a full
// recomputation (series.NormalForm + dft.Transform) to 1e-9.
func TestTrackerMatchesRecomputation(t *testing.T) {
	r := rand.New(rand.NewSource(1997))
	for _, n := range []int{16, 128, 1024} {
		for _, k := range []int{2, 3} {
			tr, err := NewTracker(randomWalkWindow(r, n), k)
			if err != nil {
				t.Fatal(err)
			}
			steps := 3*n + 37 // several wrap-arounds, ending off-cycle
			for step := 0; step < steps; step++ {
				last := tr.Window()[n-1]
				tr.Append(last + 8*r.Float64() - 4)

				if step%13 != 0 && step != steps-1 {
					continue
				}
				w := tr.Window()
				wantMean, wantStd := series.Mean(w), series.Std(w)
				mean, std := tr.Moments()
				if math.Abs(mean-wantMean) > featureTol || math.Abs(std-wantStd) > featureTol {
					t.Fatalf("n=%d step=%d: moments (%g, %g), want (%g, %g)", n, step, mean, std, wantMean, wantStd)
				}
				spec := dft.Transform(dft.ToComplex(series.NormalForm(w)))
				for f, c := range tr.Coeffs() {
					if d := cmplx.Abs(c - spec[f+1]); d > featureTol {
						t.Fatalf("n=%d step=%d: coeff X_%d off by %g (got %v want %v)", n, step, f+1, d, c, spec[f+1])
					}
				}
			}
		}
	}
}

func TestTrackerWindowOrder(t *testing.T) {
	tr, err := NewTracker([]float64{1, 2, 3, 4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(6)
	tr.Append(7)
	got := tr.Window()
	want := []float64{3, 4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Window() = %v, want %v", got, want)
		}
	}
	if tr.Len() != 5 || tr.K() != 2 {
		t.Fatalf("Len, K = %d, %d; want 5, 2", tr.Len(), tr.K())
	}
}

func TestTrackerConstantWindow(t *testing.T) {
	tr, err := NewTracker([]float64{3, 3, 3, 3, 3, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Append(3)
	mean, std := tr.Moments()
	if mean != 3 || std != 0 {
		t.Fatalf("constant window moments (%g, %g), want (3, 0)", mean, std)
	}
	for f, c := range tr.Coeffs() {
		if c != 0 {
			t.Fatalf("constant window coeff X_%d = %v, want 0", f+1, c)
		}
	}
}

func TestTrackerResyncCadence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr, err := NewTracker(randomWalkWindow(r, 32), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < resyncInterval+5; i++ {
		tr.Append(r.Float64() * 100)
	}
	if got := tr.SinceResync(); got != 5 {
		t.Fatalf("SinceResync = %d after %d appends, want 5", got, resyncInterval+5)
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker([]float64{1, 2}, 2); err == nil {
		t.Fatal("NewTracker accepted a too-short window")
	}
	if _, err := NewTracker([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("NewTracker accepted k=0")
	}
}
