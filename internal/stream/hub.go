package stream

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Member is one element of a monitor's current answer set.
type Member struct {
	Name string
	Dist float64
}

// Event kinds.
const (
	// Enter reports a series joining a monitor's answer set; Dist carries
	// its distance at entry.
	Enter = "enter"
	// Leave reports a series dropping out of the answer set.
	Leave = "leave"
)

// Event is one membership change of a standing query. Seq increases by one
// per event within a monitor; subscribers receive events in Seq order
// (gaps mean the subscriber's buffer overflowed and events were dropped —
// see Sub.Dropped).
type Event struct {
	Monitor int64   `json:"monitor"`
	Seq     int64   `json:"seq"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Dist    float64 `json:"distance,omitempty"`
}

// Funcs are the engine-side callbacks of one monitor, supplied by the
// layer that owns the query engine (the hub itself never imports it). The
// hub serializes all calls per monitor, so the closures need no internal
// locking beyond whatever read-locking the engine requires.
type Funcs struct {
	// Eval runs the standing query in full and returns the current answer
	// set (every within-eps series for a range monitor, the top-k for an
	// NN monitor). Required.
	Eval func() ([]Member, error)
	// CheckOne returns one series' membership and distance in the current
	// answer set. Provide it for monitors whose per-series membership is
	// independent of other series (range monitors): a relevant write then
	// costs one exact verification instead of a full Eval. Leave nil for
	// relative monitors (NN), where any relevant write re-Evals.
	CheckOne func(name string) (Member, bool, error)
	// Relevant is the MBR prefilter: it reports whether a series whose
	// feature point now sits at p could belong to the answer set, given
	// the current k-th member distance (+Inf while a bounded monitor is
	// unfilled; 0 for unbounded monitors, which ignore it). A nil point —
	// an upsert whose position the caller does not know — must return
	// true. Never consulted for current members, whose writes are always
	// relevant. Nil means every write is relevant.
	Relevant func(p []float64, kth float64) bool
}

// Monitor is one registered standing query: its membership bookkeeping,
// retained event ring, and subscribers.
type Monitor struct {
	ID   int64
	Kind string

	limit  int // answer-set size bound (k for NN monitors; 0 = unbounded)
	f      Funcs
	retain int

	mu      sync.Mutex
	closed  bool
	members map[string]float64
	seq     int64
	events  []Event // last retain events, oldest first
	subs    map[int64]*Sub
	nextSub int64
}

// Sub is one subscriber of a monitor's event stream.
type Sub struct {
	m       *Monitor
	id      int64
	ch      chan Event
	dropped atomic.Int64
}

// Events returns the subscriber's channel. It is closed when the
// subscription is cancelled or the monitor removed.
func (s *Sub) Events() <-chan Event { return s.ch }

// Dropped returns how many events were discarded because the subscriber's
// buffer was full (the stream is ordered but lossy under backpressure;
// resubscribe to resynchronize from a snapshot).
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Cancel detaches the subscriber and closes its channel. Safe to call more
// than once.
func (s *Sub) Cancel() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, ok := s.m.subs[s.id]; ok {
		delete(s.m.subs, s.id)
		close(s.ch)
	}
}

// Hub is the standing-query registry: monitors indexed by ID, notified on
// every store write. All methods are safe for concurrent use; per-monitor
// work (verification, event emission) runs under that monitor's own lock,
// so monitors never block one another.
type Hub struct {
	retain int

	mu       sync.RWMutex
	monitors map[int64]*Monitor
	nextID   int64
}

// NewHub creates an empty registry retaining the given number of events
// per monitor for reconnect replay (<= 0 retains none).
func NewHub(retain int) *Hub {
	if retain < 0 {
		retain = 0
	}
	return &Hub{retain: retain, monitors: make(map[int64]*Monitor)}
}

// Add registers a monitor, running Eval once for the initial membership.
// limit is the answer-set bound (0 for range monitors). The monitor is
// published to the registry *before* the initial evaluation, with its own
// lock held across it: a write committing while Eval runs either lands in
// Eval's answer or blocks on the monitor lock and re-verifies right after
// — no window in which a write is reflected nowhere.
func (h *Hub) Add(kind string, limit int, f Funcs) (*Monitor, error) {
	if f.Eval == nil {
		return nil, fmt.Errorf("stream: monitor needs an Eval func")
	}
	m := &Monitor{
		Kind:    kind,
		limit:   limit,
		f:       f,
		retain:  h.retain,
		members: make(map[string]float64),
		subs:    make(map[int64]*Sub),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h.mu.Lock()
	h.nextID++
	m.ID = h.nextID
	h.monitors[m.ID] = m
	h.mu.Unlock()
	initial, err := f.Eval()
	if err != nil {
		h.mu.Lock()
		delete(h.monitors, m.ID)
		h.mu.Unlock()
		m.closed = true
		return nil, err
	}
	for _, mem := range initial {
		m.members[mem.Name] = mem.Dist
	}
	return m, nil
}

// Get returns a registered monitor.
func (h *Hub) Get(id int64) (*Monitor, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	m, ok := h.monitors[id]
	return m, ok
}

// Remove unregisters a monitor and closes every subscriber channel,
// reporting whether the ID was registered.
func (h *Hub) Remove(id int64) bool {
	h.mu.Lock()
	m, ok := h.monitors[id]
	delete(h.monitors, id)
	h.mu.Unlock()
	if !ok {
		return false
	}
	m.mu.Lock()
	m.closed = true
	for id, s := range m.subs {
		delete(m.subs, id)
		close(s.ch)
	}
	m.mu.Unlock()
	return true
}

// Info describes a monitor for listings.
type Info struct {
	ID      int64
	Kind    string
	Members int
	Subs    int
}

// List snapshots the registered monitors in ID order.
func (h *Hub) List() []Info {
	h.mu.RLock()
	ms := make([]*Monitor, 0, len(h.monitors))
	for _, m := range h.monitors {
		ms = append(ms, m)
	}
	h.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	out := make([]Info, len(ms))
	for i, m := range ms {
		m.mu.Lock()
		out[i] = Info{ID: m.ID, Kind: m.Kind, Members: len(m.members), Subs: len(m.subs)}
		m.mu.Unlock()
	}
	return out
}

// snapshotMonitors copies the monitor set for iteration without holding
// the hub lock during per-monitor work.
func (h *Hub) snapshotMonitors() []*Monitor {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Monitor, 0, len(h.monitors))
	for _, m := range h.monitors {
		out = append(out, m)
	}
	return out
}

// NotifyWrite re-evaluates every monitor's membership of name after its
// series was appended to, inserted, or updated; p is the series' new
// feature point (nil when unknown, which skips the prefilter). Membership
// is always verified against the live store, so when writes race, skipped
// intermediate states collapse into the final one — monitors converge on
// the store's current answer sets.
func (h *Hub) NotifyWrite(name string, p []float64) {
	for _, m := range h.snapshotMonitors() {
		m.notifyWrite(name, p)
	}
}

// NotifyDelete records that name left the store: members emit a leave
// (bounded monitors also re-Eval to backfill the freed slot).
func (h *Hub) NotifyDelete(name string) {
	for _, m := range h.snapshotMonitors() {
		m.notifyDelete(name)
	}
}

// RefreshAll re-evaluates every monitor in full — the recovery hammer for
// bulk operations that rewrite the store wholesale.
func (h *Hub) RefreshAll() {
	for _, m := range h.snapshotMonitors() {
		m.mu.Lock()
		m.evalAndDiffLocked()
		m.mu.Unlock()
	}
}

// kthLocked returns the current answer-set threshold for the prefilter:
// +Inf while a bounded monitor is unfilled (anything may enter), the worst
// member distance once full, 0 for unbounded monitors (ignored — their
// Relevant closures carry a fixed eps).
func (m *Monitor) kthLocked() float64 {
	if m.limit <= 0 {
		return 0
	}
	if len(m.members) < m.limit {
		return math.Inf(1)
	}
	worst := 0.0
	for _, d := range m.members {
		if d > worst {
			worst = d
		}
	}
	return worst
}

func (m *Monitor) notifyWrite(name string, p []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	_, isMember := m.members[name]
	if !isMember && m.f.Relevant != nil && !m.f.Relevant(p, m.kthLocked()) {
		return // MBR prefilter: provably cannot enter
	}
	if m.f.CheckOne == nil {
		// Relative membership (NN): any relevant change re-evaluates.
		m.evalAndDiffLocked()
		return
	}
	mem, within, err := m.f.CheckOne(name)
	if err != nil {
		m.evalAndDiffLocked() // repair from a full answer
		return
	}
	switch {
	case within && !isMember:
		m.members[name] = mem.Dist
		m.emitLocked(Enter, name, mem.Dist)
	case within && isMember:
		m.members[name] = mem.Dist // distance moved, membership unchanged
	case !within && isMember:
		delete(m.members, name)
		m.emitLocked(Leave, name, 0)
	}
}

func (m *Monitor) notifyDelete(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if _, isMember := m.members[name]; !isMember {
		return
	}
	if m.limit > 0 {
		// A bounded answer set backfills from the store.
		m.evalAndDiffLocked()
		return
	}
	delete(m.members, name)
	m.emitLocked(Leave, name, 0)
}

// evalAndDiffLocked re-runs the standing query and emits the membership
// delta: leaves first (sorted by name), then enters (sorted by distance,
// then name) — a deterministic order for a deterministic answer set.
func (m *Monitor) evalAndDiffLocked() {
	fresh, err := m.f.Eval()
	if err != nil {
		return // keep the old membership; the next notification retries
	}
	next := make(map[string]float64, len(fresh))
	for _, mem := range fresh {
		next[mem.Name] = mem.Dist
	}
	var leaves []string
	for name := range m.members {
		if _, ok := next[name]; !ok {
			leaves = append(leaves, name)
		}
	}
	sort.Strings(leaves)
	var enters []Member
	for _, mem := range fresh {
		if _, ok := m.members[mem.Name]; !ok {
			enters = append(enters, mem)
		}
	}
	sort.Slice(enters, func(i, j int) bool {
		if enters[i].Dist != enters[j].Dist {
			return enters[i].Dist < enters[j].Dist
		}
		return enters[i].Name < enters[j].Name
	})
	m.members = next
	for _, name := range leaves {
		m.emitLocked(Leave, name, 0)
	}
	for _, mem := range enters {
		m.emitLocked(Enter, mem.Name, mem.Dist)
	}
}

func (m *Monitor) emitLocked(kind, name string, dist float64) {
	m.seq++
	ev := Event{Monitor: m.ID, Seq: m.seq, Kind: kind, Name: name, Dist: dist}
	if m.retain > 0 {
		if len(m.events) == m.retain {
			copy(m.events, m.events[1:])
			m.events = m.events[:m.retain-1]
		}
		m.events = append(m.events, ev)
	}
	for _, s := range m.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// Members returns the current answer set sorted by (distance, name).
func (m *Monitor) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.membersLocked()
}

func (m *Monitor) membersLocked() []Member {
	out := make([]Member, 0, len(m.members))
	for name, d := range m.members {
		out = append(out, Member{Name: name, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Subscribe attaches a buffered subscriber. after selects the catch-up
// mode: after < 0 requests a snapshot of the current membership; after
// >= 0 asks for a replay of the retained events with Seq > after, which
// succeeds (snapshot == nil) only when the retained ring still covers that
// point — otherwise the caller gets a fresh snapshot and the replay is
// nil. seq is the monitor's sequence number as of the snapshot: events on
// the channel continue from seq+1 with no gap.
func (m *Monitor) Subscribe(after int64, buf int) (sub *Sub, snapshot []Member, replay []Event, seq int64) {
	if buf < 1 {
		buf = 64
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextSub++
	sub = &Sub{m: m, id: m.nextSub, ch: make(chan Event, buf)}
	if m.closed {
		close(sub.ch)
		return sub, nil, nil, m.seq
	}
	m.subs[sub.id] = sub
	if after >= 0 && after <= m.seq {
		missed := m.seq - after
		if missed == 0 {
			return sub, nil, nil, m.seq
		}
		if int64(len(m.events)) >= missed {
			replay = make([]Event, missed)
			copy(replay, m.events[int64(len(m.events))-missed:])
			return sub, nil, replay, m.seq
		}
	}
	return sub, m.membersLocked(), nil, m.seq
}
