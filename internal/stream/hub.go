package stream

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/telemetry"
)

func init() {
	telemetry.Describe("tsq_watch_dropped_events_total",
		"Monitor events dropped because a subscriber's buffer was full.")
}

// mWatchDropped is resolved once: emitLocked runs on every monitor event
// under the monitor lock, so the drop path must not pay a registry
// lookup.
var mWatchDropped = telemetry.Count("tsq_watch_dropped_events_total")

// Member is one element of a monitor's current answer set.
type Member struct {
	Name string
	Dist float64
}

// Event kinds.
const (
	// Enter reports a series joining a monitor's answer set; Dist carries
	// its distance at entry.
	Enter = "enter"
	// Leave reports a series dropping out of the answer set.
	Leave = "leave"
)

// Event is one membership change of a standing query. Seq increases by one
// per event within a monitor; subscribers receive events in Seq order
// (gaps mean the subscriber's buffer overflowed and events were dropped —
// see Sub.Dropped).
type Event struct {
	Monitor int64   `json:"monitor"`
	Seq     int64   `json:"seq"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Dist    float64 `json:"distance,omitempty"`
}

// Funcs are the engine-side callbacks of one monitor, supplied by the
// layer that owns the query engine (the hub itself never imports it). The
// hub serializes all calls per monitor, so the closures need no internal
// locking beyond whatever read-locking the engine requires.
type Funcs struct {
	// Eval runs the standing query in full and returns the current answer
	// set (every within-eps series for a range monitor, the top-k for an
	// NN monitor). Required.
	Eval func() ([]Member, error)
	// CheckOne returns one series' membership and distance in the current
	// answer set. Provide it for monitors whose per-series membership is
	// independent of other series (range monitors): a relevant write then
	// costs one exact verification instead of a full Eval. Leave nil for
	// relative monitors (NN), where any relevant write re-Evals.
	CheckOne func(name string) (Member, bool, error)
	// Relevant is the MBR prefilter: it reports whether a series whose
	// feature point now sits at p could belong to the answer set, given
	// the current k-th member distance (+Inf while a bounded monitor is
	// unfilled; 0 for unbounded monitors, which ignore it). A nil point —
	// an upsert whose position the caller does not know — must return
	// true. Never consulted for current members, whose writes are always
	// relevant. Nil means every write is relevant.
	Relevant func(p []float64, kth float64) bool
	// Rect, when non-empty, asserts that Relevant reduces to rectangle
	// containment of the raw feature point in this fixed rectangle (the
	// query's Lemma 1 search rectangle — only valid for unbounded monitors
	// whose transformation acts as the identity on the feature space, so
	// the rectangle never moves). The hub then indexes the monitor in a
	// shared R-tree over monitor rectangles: a write probes the tree once
	// instead of consulting every monitor serially, which is what makes
	// thousands of standing queries per store cheap. Angular carries the
	// per-dimension wrap-around flags of the rectangle's feature space.
	// Leave Rect zero for monitors whose relevance can change shape (NN
	// monitors, transformed queries); they are consulted on every write,
	// exactly as before.
	Rect    geom.Rect
	Angular []bool
}

// Monitor is one registered standing query: its membership bookkeeping,
// retained event ring, and subscribers.
type Monitor struct {
	ID   int64
	Kind string

	limit  int // answer-set size bound (k for NN monitors; 0 = unbounded)
	f      Funcs
	retain int
	hub    *Hub // owning registry; carries the member reverse index

	mu      sync.Mutex
	closed  bool
	members map[string]float64
	seq     int64
	events  []Event // last retain events, oldest first
	subs    map[int64]*Sub
	nextSub int64
}

// setMemberLocked / dropMemberLocked are the only paths that mutate a
// monitor's membership; they keep the hub's name -> monitors reverse index
// exactly in sync (which NotifyWrite and NotifyDelete rely on to find the
// monitors a name can leave). Caller holds m.mu.
func (m *Monitor) setMemberLocked(name string, dist float64) {
	if _, ok := m.members[name]; !ok {
		m.hub.memberAdd(name, m)
	}
	m.members[name] = dist
}

func (m *Monitor) dropMemberLocked(name string) {
	if _, ok := m.members[name]; ok {
		m.hub.memberRemove(name, m)
		delete(m.members, name)
	}
}

// Sub is one subscriber of a monitor's event stream.
type Sub struct {
	m       *Monitor
	id      int64
	ch      chan Event
	dropped atomic.Int64
}

// Events returns the subscriber's channel. It is closed when the
// subscription is cancelled or the monitor removed.
func (s *Sub) Events() <-chan Event { return s.ch }

// Dropped returns how many events were discarded because the subscriber's
// buffer was full (the stream is ordered but lossy under backpressure;
// resubscribe to resynchronize from a snapshot).
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Cancel detaches the subscriber and closes its channel. Safe to call more
// than once.
func (s *Sub) Cancel() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, ok := s.m.subs[s.id]; ok {
		delete(s.m.subs, s.id)
		close(s.ch)
	}
}

// Hub is the standing-query registry: monitors indexed by ID, notified on
// every store write. All methods are safe for concurrent use; per-monitor
// work (verification, event emission) runs under that monitor's own lock,
// so monitors never block one another.
//
// Monitors with a fixed search rectangle (Funcs.Rect) are additionally
// indexed in a shared R-tree, so a write resolves the monitors it could
// possibly concern with one spatial probe — the indexed-monitor analogue
// of the k-index's own filter step — plus a reverse-index lookup for the
// monitors the written name currently belongs to (leave detection).
// Monitors without a fixed rectangle stay on the serial path.
type Hub struct {
	retain int

	mu       sync.RWMutex
	monitors map[int64]*Monitor
	nextID   int64

	// Spatial index over fixed monitor rectangles. Rectangles are
	// immutable for a monitor's lifetime (Funcs.Rect's contract), so
	// entries change only at Add and Remove — probes never race a moving
	// rectangle. The tree is created lazily with the first indexable
	// monitor's dimensionality.
	idxMu     sync.RWMutex
	idx       *rtree.Tree
	angular   []bool
	indexed   map[int64]indexedMonitor
	unindexed map[int64]*Monitor

	// memberOf is the name -> monitors reverse index, maintained by the
	// monitors' membership mutations (lock order: Monitor.mu, then memMu).
	memMu    sync.Mutex
	memberOf map[string]map[int64]*Monitor
}

type indexedMonitor struct {
	m    *Monitor
	rect geom.Rect
}

// NewHub creates an empty registry retaining the given number of events
// per monitor for reconnect replay (<= 0 retains none).
func NewHub(retain int) *Hub {
	if retain < 0 {
		retain = 0
	}
	return &Hub{
		retain:    retain,
		monitors:  make(map[int64]*Monitor),
		indexed:   make(map[int64]indexedMonitor),
		unindexed: make(map[int64]*Monitor),
		memberOf:  make(map[string]map[int64]*Monitor),
	}
}

func (h *Hub) memberAdd(name string, m *Monitor) {
	h.memMu.Lock()
	set := h.memberOf[name]
	if set == nil {
		set = make(map[int64]*Monitor)
		h.memberOf[name] = set
	}
	set[m.ID] = m
	h.memMu.Unlock()
}

func (h *Hub) memberRemove(name string, m *Monitor) {
	h.memMu.Lock()
	if set := h.memberOf[name]; set != nil {
		delete(set, m.ID)
		if len(set) == 0 {
			delete(h.memberOf, name)
		}
	}
	h.memMu.Unlock()
}

// rectLimit clamps rectangle coordinates for R-tree storage: unbounded
// moment dimensions arrive as +/-MaxFloat64, whose interval widths
// overflow the tree's area and margin arithmetic to Inf (and Inf - Inf to
// NaN in split decisions). Clamping to +/-1e18 keeps every real mean/std
// inside while the geometry stays finite.
const rectLimit = 1e18

func clampRect(r geom.Rect) geom.Rect {
	out := r.Clone()
	for i := range out.Lo {
		out.Lo[i] = math.Max(out.Lo[i], -rectLimit)
		out.Hi[i] = math.Min(out.Hi[i], rectLimit)
	}
	return out
}

// Add registers a monitor, running Eval once for the initial membership.
// limit is the answer-set bound (0 for range monitors). The monitor is
// published to the registry *before* the initial evaluation, with its own
// lock held across it: a write committing while Eval runs either lands in
// Eval's answer or blocks on the monitor lock and re-verifies right after
// — no window in which a write is reflected nowhere.
func (h *Hub) Add(kind string, limit int, f Funcs) (*Monitor, error) {
	if f.Eval == nil {
		return nil, fmt.Errorf("stream: monitor needs an Eval func")
	}
	m := &Monitor{
		Kind:    kind,
		limit:   limit,
		f:       f,
		retain:  h.retain,
		hub:     h,
		members: make(map[string]float64),
		subs:    make(map[int64]*Sub),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h.mu.Lock()
	h.nextID++
	m.ID = h.nextID
	h.monitors[m.ID] = m
	h.mu.Unlock()
	// Reachable by NotifyWrite from here on — via the serial set until the
	// initial evaluation commits (a racing write blocks on m.mu and
	// re-verifies right after, preserving the no-lost-write invariant),
	// then via the spatial index when the monitor carries a fixed rect.
	h.idxMu.Lock()
	h.unindexed[m.ID] = m
	h.idxMu.Unlock()
	initial, err := f.Eval()
	if err != nil {
		h.mu.Lock()
		delete(h.monitors, m.ID)
		h.mu.Unlock()
		h.idxMu.Lock()
		delete(h.unindexed, m.ID)
		h.idxMu.Unlock()
		m.closed = true
		return nil, err
	}
	for _, mem := range initial {
		m.setMemberLocked(mem.Name, mem.Dist)
	}
	if limit == 0 && f.Rect.Dims() > 0 {
		h.indexMonitor(m, f)
	}
	return m, nil
}

// indexMonitor moves a freshly added monitor from the serial set into the
// spatial index. The registration re-check under idxMu closes the race
// with a concurrent Remove: Remove deregisters (h.mu) before its own
// idxMu cleanup, so either this check sees the monitor gone and skips
// indexing, or the insert lands first and Remove's cleanup — serialized
// behind the same idxMu — finds and deletes it. Without the re-check a
// Remove that cleaned the index before this insert would leak the closed
// monitor's rectangle in the tree forever.
func (h *Hub) indexMonitor(m *Monitor, f Funcs) {
	rect := clampRect(f.Rect)
	h.idxMu.Lock()
	defer h.idxMu.Unlock()
	h.mu.RLock()
	_, alive := h.monitors[m.ID]
	h.mu.RUnlock()
	if !alive {
		return
	}
	if h.idx == nil {
		t, err := rtree.New(rect.Dims(), rtree.Options{})
		if err != nil {
			return // unindexable geometry; stay on the serial path
		}
		h.idx = t
		h.angular = f.Angular
	}
	if h.idx.Dims() != rect.Dims() {
		return // mismatched schema; stay on the serial path
	}
	if err := h.idx.Insert(rect, m.ID); err != nil {
		return
	}
	h.indexed[m.ID] = indexedMonitor{m: m, rect: rect}
	delete(h.unindexed, m.ID)
}

// Get returns a registered monitor.
func (h *Hub) Get(id int64) (*Monitor, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	m, ok := h.monitors[id]
	return m, ok
}

// Remove unregisters a monitor and closes every subscriber channel,
// reporting whether the ID was registered.
func (h *Hub) Remove(id int64) bool {
	h.mu.Lock()
	m, ok := h.monitors[id]
	delete(h.monitors, id)
	h.mu.Unlock()
	if !ok {
		return false
	}
	h.idxMu.Lock()
	if im, ok := h.indexed[id]; ok {
		h.idx.Delete(im.rect, id)
		delete(h.indexed, id)
	}
	delete(h.unindexed, id)
	h.idxMu.Unlock()
	m.mu.Lock()
	m.closed = true
	for name := range m.members {
		h.memberRemove(name, m)
	}
	m.members = make(map[string]float64)
	for id, s := range m.subs {
		delete(m.subs, id)
		close(s.ch)
	}
	m.mu.Unlock()
	return true
}

// Info describes a monitor for listings.
type Info struct {
	ID      int64
	Kind    string
	Members int
	Subs    int
	// Events is the replay-ring depth: retained events available for
	// reconnect resume.
	Events int
}

// List snapshots the registered monitors in ID order.
func (h *Hub) List() []Info {
	h.mu.RLock()
	ms := make([]*Monitor, 0, len(h.monitors))
	for _, m := range h.monitors {
		ms = append(ms, m)
	}
	h.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	out := make([]Info, len(ms))
	for i, m := range ms {
		m.mu.Lock()
		out[i] = Info{ID: m.ID, Kind: m.Kind, Members: len(m.members), Subs: len(m.subs), Events: len(m.events)}
		m.mu.Unlock()
	}
	return out
}

// snapshotMonitors copies the monitor set for iteration without holding
// the hub lock during per-monitor work.
func (h *Hub) snapshotMonitors() []*Monitor {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Monitor, 0, len(h.monitors))
	for _, m := range h.monitors {
		out = append(out, m)
	}
	return out
}

// NotifyWrite re-evaluates the concerned monitors' membership of name
// after its series was appended to, inserted, or updated; p is the
// series' new feature point (nil when unknown, which disables spatial
// filtering). A monitor is concerned when the written point falls in its
// indexed rectangle (it may enter the answer set), when name is currently
// a member (it may leave or move), or when the monitor is unindexed.
// Membership is always verified against the live store, so when writes
// race, skipped intermediate states collapse into the final one —
// monitors converge on the store's current answer sets.
func (h *Hub) NotifyWrite(name string, p []float64) {
	for _, m := range h.writeTargets(name, p) {
		m.notifyWrite(name, p)
	}
}

// writeTargets resolves the monitors one write concerns: the serial set,
// the spatial probe's hits, and the written name's current memberships,
// deduplicated and ordered by ID for deterministic processing.
func (h *Hub) writeTargets(name string, p []float64) []*Monitor {
	seen := make(map[int64]*Monitor)
	h.idxMu.RLock()
	for id, m := range h.unindexed {
		seen[id] = m
	}
	if h.idx != nil {
		if p == nil || len(p) != h.idx.Dims() {
			for id, im := range h.indexed {
				seen[id] = im.m
			}
		} else {
			q := geom.PointRect(geom.Point(p))
			var overlap rtree.Overlap
			if h.angular != nil {
				ang := h.angular
				overlap = func(tr, qr geom.Rect) bool { return geom.IntersectsMixed(tr, qr, ang) }
			}
			identity := func(r geom.Rect) geom.Rect { return r }
			h.idx.TransformedSearch(q, identity, overlap, func(it rtree.Item, _ geom.Rect) bool {
				if im, ok := h.indexed[it.ID]; ok {
					seen[it.ID] = im.m
				}
				return true
			})
		}
	}
	h.idxMu.RUnlock()
	h.memMu.Lock()
	for id, m := range h.memberOf[name] {
		seen[id] = m
	}
	h.memMu.Unlock()
	return sortedMonitors(seen)
}

func sortedMonitors(set map[int64]*Monitor) []*Monitor {
	out := make([]*Monitor, 0, len(set))
	for _, m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NotifyDelete records that name left the store: members emit a leave
// (bounded monitors also re-Eval to backfill the freed slot). Only the
// monitors name currently belongs to can be affected, so the reverse
// index resolves them directly — a delete of an unwatched series costs
// one map lookup regardless of how many monitors are registered.
func (h *Hub) NotifyDelete(name string) {
	h.memMu.Lock()
	set := make(map[int64]*Monitor, len(h.memberOf[name]))
	for id, m := range h.memberOf[name] {
		set[id] = m
	}
	h.memMu.Unlock()
	for _, m := range sortedMonitors(set) {
		m.notifyDelete(name)
	}
}

// RefreshAll re-evaluates every monitor in full — the recovery hammer for
// bulk operations that rewrite the store wholesale.
func (h *Hub) RefreshAll() {
	for _, m := range h.snapshotMonitors() {
		m.mu.Lock()
		m.evalAndDiffLocked()
		m.mu.Unlock()
	}
}

// kthLocked returns the current answer-set threshold for the prefilter:
// +Inf while a bounded monitor is unfilled (anything may enter), the worst
// member distance once full, 0 for unbounded monitors (ignored — their
// Relevant closures carry a fixed eps).
func (m *Monitor) kthLocked() float64 {
	if m.limit <= 0 {
		return 0
	}
	if len(m.members) < m.limit {
		return math.Inf(1)
	}
	worst := 0.0
	for _, d := range m.members {
		if d > worst {
			worst = d
		}
	}
	return worst
}

func (m *Monitor) notifyWrite(name string, p []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	_, isMember := m.members[name]
	if !isMember && m.f.Relevant != nil && !m.f.Relevant(p, m.kthLocked()) {
		return // MBR prefilter: provably cannot enter
	}
	if m.f.CheckOne == nil {
		// Relative membership (NN): any relevant change re-evaluates.
		m.evalAndDiffLocked()
		return
	}
	mem, within, err := m.f.CheckOne(name)
	if err != nil {
		m.evalAndDiffLocked() // repair from a full answer
		return
	}
	switch {
	case within && !isMember:
		m.setMemberLocked(name, mem.Dist)
		m.emitLocked(Enter, name, mem.Dist)
	case within && isMember:
		m.members[name] = mem.Dist // distance moved, membership unchanged
	case !within && isMember:
		m.dropMemberLocked(name)
		m.emitLocked(Leave, name, 0)
	}
}

func (m *Monitor) notifyDelete(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if _, isMember := m.members[name]; !isMember {
		return
	}
	if m.limit > 0 {
		// A bounded answer set backfills from the store.
		m.evalAndDiffLocked()
		return
	}
	m.dropMemberLocked(name)
	m.emitLocked(Leave, name, 0)
}

// evalAndDiffLocked re-runs the standing query and emits the membership
// delta: leaves first (sorted by name), then enters (sorted by distance,
// then name) — a deterministic order for a deterministic answer set.
func (m *Monitor) evalAndDiffLocked() {
	fresh, err := m.f.Eval()
	if err != nil {
		return // keep the old membership; the next notification retries
	}
	next := make(map[string]float64, len(fresh))
	for _, mem := range fresh {
		next[mem.Name] = mem.Dist
	}
	var leaves []string
	for name := range m.members {
		if _, ok := next[name]; !ok {
			leaves = append(leaves, name)
		}
	}
	sort.Strings(leaves)
	var enters []Member
	for _, mem := range fresh {
		if _, ok := m.members[mem.Name]; !ok {
			enters = append(enters, mem)
		}
	}
	sort.Slice(enters, func(i, j int) bool {
		if enters[i].Dist != enters[j].Dist {
			return enters[i].Dist < enters[j].Dist
		}
		return enters[i].Name < enters[j].Name
	})
	for _, name := range leaves {
		m.dropMemberLocked(name)
	}
	for name, dist := range next {
		m.setMemberLocked(name, dist)
	}
	for _, name := range leaves {
		m.emitLocked(Leave, name, 0)
	}
	for _, mem := range enters {
		m.emitLocked(Enter, mem.Name, mem.Dist)
	}
}

func (m *Monitor) emitLocked(kind, name string, dist float64) {
	m.seq++
	ev := Event{Monitor: m.ID, Seq: m.seq, Kind: kind, Name: name, Dist: dist}
	if m.retain > 0 {
		if len(m.events) == m.retain {
			copy(m.events, m.events[1:])
			m.events = m.events[:m.retain-1]
		}
		m.events = append(m.events, ev)
	}
	for _, s := range m.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			if telemetry.Enabled() {
				mWatchDropped.Inc()
			}
		}
	}
}

// SubInfo describes one live subscription's buffer for scrape-time
// gauges: how deep its channel currently is, its capacity, and how many
// events it has lost.
type SubInfo struct {
	Monitor int64
	Sub     int64
	Depth   int
	Cap     int
	Dropped int64
}

// SubInfos snapshots every live subscription across all monitors,
// ordered by (monitor, sub).
func (h *Hub) SubInfos() []SubInfo {
	var out []SubInfo
	for _, m := range h.snapshotMonitors() {
		m.mu.Lock()
		for id, s := range m.subs {
			out = append(out, SubInfo{
				Monitor: m.ID, Sub: id,
				Depth: len(s.ch), Cap: cap(s.ch),
				Dropped: s.dropped.Load(),
			})
		}
		m.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Monitor != out[j].Monitor {
			return out[i].Monitor < out[j].Monitor
		}
		return out[i].Sub < out[j].Sub
	})
	return out
}

// Members returns the current answer set sorted by (distance, name).
func (m *Monitor) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.membersLocked()
}

func (m *Monitor) membersLocked() []Member {
	out := make([]Member, 0, len(m.members))
	for name, d := range m.members {
		out = append(out, Member{Name: name, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Subscribe attaches a buffered subscriber. after selects the catch-up
// mode: after < 0 requests a snapshot of the current membership; after
// >= 0 asks for a replay of the retained events with Seq > after, which
// succeeds (snapshot == nil) only when the retained ring still covers that
// point — otherwise the caller gets a fresh snapshot and the replay is
// nil. seq is the monitor's sequence number as of the snapshot: events on
// the channel continue from seq+1 with no gap.
func (m *Monitor) Subscribe(after int64, buf int) (sub *Sub, snapshot []Member, replay []Event, seq int64) {
	if buf < 1 {
		buf = 64
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextSub++
	sub = &Sub{m: m, id: m.nextSub, ch: make(chan Event, buf)}
	if m.closed {
		close(sub.ch)
		return sub, nil, nil, m.seq
	}
	m.subs[sub.id] = sub
	if after >= 0 && after <= m.seq {
		missed := m.seq - after
		if missed == 0 {
			return sub, nil, nil, m.seq
		}
		if int64(len(m.events)) >= missed {
			replay = make([]Event, missed)
			copy(replay, m.events[int64(len(m.events))-missed:])
			return sub, nil, replay, m.seq
		}
	}
	return sub, m.membersLocked(), nil, m.seq
}
