// Package stream is the engine-independent half of tsqlive, the streaming
// subsystem: sliding-window feature maintenance for append-oriented ingest
// (Tracker) and a standing-query registry with enter/leave event delivery
// (Hub). The query engine in internal/core owns one Tracker per live-updated
// series; the tsq server layer owns one Hub and wires its monitors to the
// engine through closures, so this package never imports the engine.
package stream

import (
	"fmt"
	"math"

	"repro/internal/dft"
)

// resyncInterval bounds the number of incremental slides between exact
// recomputations of the tracked sums and DFT coefficients. The sliding
// recurrence and the running moment sums drift linearly with the slide
// count; resyncing every few hundred points keeps the error orders of
// magnitude below the 1e-9 the property tests pin, at an amortized cost of
// O(n/resyncInterval) work per appended point.
const resyncInterval = 256

// Tracker maintains the streaming state of one fixed-length series under
// appends: the ring buffer holding the current window, compensated running
// first and second moments, and the sliding DFT coefficients X_0..X_K of
// the raw window. Everything a feature point needs — mean, standard
// deviation, and the normal form's coefficients X_1..X_K — comes out in
// O(K) per appended point instead of the O(n*K) of a fresh extraction.
//
// The normal-form coefficients derive from the raw ones by linearity of
// the DFT: nf = (w - mean)/std, and the DFT of the all-ones vector is
// sqrt(n)*delta_0, so X_f(nf) = X_f(w)/std for every f >= 1 (the mean only
// ever lands in X_0). A zero-deviation (constant) window has the all-zero
// normal form, matching series.NormalForm.
//
// A Tracker is not safe for concurrent use; the engine serializes appends
// per series with its shard locks.
type Tracker struct {
	ring []float64
	head int // index of the oldest value
	k    int // retained normal-form coefficients X_1..X_K

	// Compensated (Kahan) accumulators for sum and sum of squares: the
	// plain running versions lose ~n*eps*sum relative accuracy over a
	// window's worth of slides, which after the mean^2 cancellation in the
	// variance would exceed the 1e-9 feature tolerance at large windows.
	sum, sumC     float64
	sumSq, sumSqC float64

	sdft        *dft.Sliding // X_0..X_K of the raw window
	sinceResync int
}

// NewTracker copies window (the series' current stored values, oldest
// first) and computes the initial sums and coefficients exactly. k is the
// number of normal-form coefficients X_1..X_K to maintain; the window must
// be longer than k.
func NewTracker(window []float64, k int) (*Tracker, error) {
	if k < 1 {
		return nil, fmt.Errorf("stream: coefficient count %d must be >= 1", k)
	}
	if len(window) < k+1 {
		return nil, fmt.Errorf("stream: window length %d too short for K=%d", len(window), k)
	}
	t := &Tracker{
		ring: make([]float64, len(window)),
		k:    k,
	}
	copy(t.ring, window)
	sd, err := dft.NewSliding(window, k+1)
	if err != nil {
		return nil, err
	}
	t.sdft = sd
	t.recomputeSums()
	return t, nil
}

// add folds v into a compensated accumulator.
func add(sum, comp *float64, v float64) {
	y := v - *comp
	s := *sum + y
	*comp = (s - *sum) - y
	*sum = s
}

// Append slides the window by one point: the oldest value leaves, x enters
// at the back. O(K) amortized.
func (t *Tracker) Append(x float64) {
	old := t.ring[t.head]
	t.ring[t.head] = x
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	add(&t.sum, &t.sumC, x-old)
	add(&t.sumSq, &t.sumSqC, x*x-old*old)
	t.sdft.Slide(old, x)
	t.sinceResync++
	if t.sinceResync >= resyncInterval {
		t.Resync()
	}
}

// Len returns the window length.
func (t *Tracker) Len() int { return len(t.ring) }

// K returns the number of maintained normal-form coefficients.
func (t *Tracker) K() int { return t.k }

// Window materializes the current window, oldest value first.
func (t *Tracker) Window() []float64 {
	out := make([]float64, len(t.ring))
	n := copy(out, t.ring[t.head:])
	copy(out[n:], t.ring[:t.head])
	return out
}

// Moments returns the window's mean and population standard deviation from
// the running sums.
func (t *Tracker) Moments() (mean, std float64) {
	n := float64(len(t.ring))
	mean = t.sum / n
	v := t.sumSq/n - mean*mean
	if v < 0 {
		v = 0 // rounding may push a near-constant window's variance negative
	}
	return mean, math.Sqrt(v)
}

// Coeffs returns the normal form's DFT coefficients X_1..X_K of the
// current window — the feature-point coefficients — derived from the
// sliding raw coefficients in O(K). A constant window yields zeros.
func (t *Tracker) Coeffs() []complex128 {
	out := make([]complex128, t.k)
	_, std := t.Moments()
	if std == 0 {
		return out
	}
	inv := complex(1/std, 0)
	for f := 1; f <= t.k; f++ {
		out[f-1] = t.sdft.Coeff(f) * inv
	}
	return out
}

// Resync recomputes the sums and coefficients exactly from the window,
// discarding accumulated drift.
func (t *Tracker) Resync() {
	t.recomputeSums()
	_ = t.sdft.Resync(t.Window()) // length always matches
	t.sinceResync = 0
}

// SinceResync returns the number of appends since the last exact
// recomputation (diagnostics and tests).
func (t *Tracker) SinceResync() int { return t.sinceResync }

func (t *Tracker) recomputeSums() {
	t.sum, t.sumC, t.sumSq, t.sumSqC = 0, 0, 0, 0
	for _, v := range t.ring {
		add(&t.sum, &t.sumC, v)
		add(&t.sumSq, &t.sumSqC, v*v)
	}
}
