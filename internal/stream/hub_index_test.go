package stream

import (
	"sync/atomic"
	"testing"

	"repro/internal/geom"
)

// indexProbe is a test monitor harness counting engine callbacks.
type indexProbe struct {
	evals  atomic.Int64
	checks atomic.Int64
	within map[string]float64 // name -> dist considered "within"
}

func (p *indexProbe) funcs(rect geom.Rect) Funcs {
	f := Funcs{
		Eval: func() ([]Member, error) {
			p.evals.Add(1)
			out := make([]Member, 0, len(p.within))
			for n, d := range p.within {
				out = append(out, Member{Name: n, Dist: d})
			}
			return out, nil
		},
		CheckOne: func(name string) (Member, bool, error) {
			p.checks.Add(1)
			d, ok := p.within[name]
			return Member{Name: name, Dist: d}, ok, nil
		},
	}
	if rect.Dims() > 0 {
		f.Rect = rect
		f.Relevant = func(pt []float64, _ float64) bool {
			return pt == nil || geom.ContainsPointMixed(rect, geom.Point(pt), nil)
		}
	}
	return f
}

func rect2(loX, hiX, loY, hiY float64) geom.Rect {
	return geom.Rect{Lo: geom.Point{loX, loY}, Hi: geom.Point{hiX, hiY}}
}

// TestIndexedMonitorsSkipIrrelevantWrites: a write whose point misses a
// monitor's rectangle must not touch that monitor at all.
func TestIndexedMonitorsSkipIrrelevantWrites(t *testing.T) {
	h := NewHub(16)
	a, b := &indexProbe{within: map[string]float64{}}, &indexProbe{within: map[string]float64{}}
	ma, err := h.Add("range", 0, a.funcs(rect2(0, 1, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := h.Add("range", 0, b.funcs(rect2(10, 11, 10, 11)))
	if err != nil {
		t.Fatal(err)
	}
	checks0a, checks0b := a.checks.Load(), b.checks.Load()

	// Point inside A's rect only.
	a.within["x"] = 0.5
	h.NotifyWrite("x", []float64{0.5, 0.5})
	if a.checks.Load() == checks0a {
		t.Fatal("monitor A was not consulted for a point in its rectangle")
	}
	if b.checks.Load() != checks0b {
		t.Fatal("monitor B was consulted for a point far outside its rectangle")
	}
	if got := len(ma.Members()); got != 1 {
		t.Fatalf("monitor A members = %d, want 1", got)
	}
	if got := len(mb.Members()); got != 0 {
		t.Fatalf("monitor B members = %d, want 0", got)
	}
}

// TestIndexedMonitorLeaveViaMemberIndex: when a member's point moves out
// of the rectangle, the reverse index must still route the write so the
// leave is detected.
func TestIndexedMonitorLeaveViaMemberIndex(t *testing.T) {
	h := NewHub(16)
	p := &indexProbe{within: map[string]float64{"x": 0.4}}
	m, err := h.Add("range", 0, p.funcs(rect2(0, 1, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Members()); got != 1 {
		t.Fatalf("initial members = %d, want 1", got)
	}
	sub, _, _, _ := m.Subscribe(-1, 8)
	defer sub.Cancel()

	// The series drifts far outside the rectangle and out of the answer.
	delete(p.within, "x")
	h.NotifyWrite("x", []float64{50, 50})
	if got := len(m.Members()); got != 0 {
		t.Fatalf("members after leave = %d, want 0", got)
	}
	ev := <-sub.Events()
	if ev.Kind != Leave || ev.Name != "x" {
		t.Fatalf("event = %+v, want leave x", ev)
	}
}

// TestNotifyDeleteOnlyTouchesMembers: deletes resolve monitors through the
// member reverse index.
func TestNotifyDeleteOnlyTouchesMembers(t *testing.T) {
	h := NewHub(16)
	member := &indexProbe{within: map[string]float64{"x": 0.2}}
	other := &indexProbe{within: map[string]float64{}}
	mm, err := h.Add("range", 0, member.funcs(rect2(0, 1, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add("range", 0, other.funcs(rect2(5, 6, 5, 6))); err != nil {
		t.Fatal(err)
	}
	evals0 := other.evals.Load()
	delete(member.within, "x")
	h.NotifyDelete("x")
	if got := len(mm.Members()); got != 0 {
		t.Fatalf("members after delete = %d, want 0", got)
	}
	if other.evals.Load() != evals0 || other.checks.Load() != 0 {
		t.Fatal("non-member monitor was touched by an unrelated delete")
	}
}

// TestUnindexedMonitorsAlwaysNotified: monitors without a fixed rectangle
// stay on the serial path, and nil points reach everyone.
func TestUnindexedMonitorsAlwaysNotified(t *testing.T) {
	h := NewHub(16)
	serial := &indexProbe{within: map[string]float64{}}
	indexed := &indexProbe{within: map[string]float64{}}
	if _, err := h.Add("range", 0, serial.funcs(geom.Rect{})); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add("range", 0, indexed.funcs(rect2(0, 1, 0, 1))); err != nil {
		t.Fatal(err)
	}

	h.NotifyWrite("y", []float64{100, 100}) // far from the indexed rect
	if serial.checks.Load() == 0 {
		t.Fatal("unindexed monitor missed a write")
	}
	if indexed.checks.Load() != 0 {
		t.Fatal("indexed monitor consulted for a far point")
	}

	// Unknown position: everyone must be consulted.
	h.NotifyWrite("y", nil)
	if indexed.checks.Load() == 0 {
		t.Fatal("indexed monitor missed a nil-point write")
	}
}

// TestIndexedMonitorRemove: removal cleans the spatial index and the
// member reverse index.
func TestIndexedMonitorRemove(t *testing.T) {
	h := NewHub(16)
	p := &indexProbe{within: map[string]float64{"x": 0.1}}
	m, err := h.Add("range", 0, p.funcs(rect2(0, 1, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Remove(m.ID) {
		t.Fatal("Remove reported missing monitor")
	}
	checks0 := p.checks.Load()
	h.NotifyWrite("x", []float64{0.5, 0.5})
	h.NotifyDelete("x")
	if p.checks.Load() != checks0 {
		t.Fatal("removed monitor still receives notifications")
	}
	h.memMu.Lock()
	left := len(h.memberOf)
	h.memMu.Unlock()
	if left != 0 {
		t.Fatalf("member reverse index not cleaned: %d names", left)
	}
}
