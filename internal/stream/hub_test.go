package stream

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// fakeStore drives a Hub the way the server layer does, with a plain map
// of name -> distance standing in for the engine.
type fakeStore struct {
	mu   sync.Mutex
	dist map[string]float64
}

func (f *fakeStore) set(name string, d float64) {
	f.mu.Lock()
	f.dist[name] = d
	f.mu.Unlock()
}

func (f *fakeStore) del(name string) {
	f.mu.Lock()
	delete(f.dist, name)
	f.mu.Unlock()
}

// rangeFuncs builds range-monitor callbacks answering "within eps".
func (f *fakeStore) rangeFuncs(eps float64) Funcs {
	return Funcs{
		Eval: func() ([]Member, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			var out []Member
			for name, d := range f.dist {
				if d <= eps {
					out = append(out, Member{Name: name, Dist: d})
				}
			}
			return out, nil
		},
		CheckOne: func(name string) (Member, bool, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			d, ok := f.dist[name]
			if !ok || d > eps {
				return Member{}, false, nil
			}
			return Member{Name: name, Dist: d}, true, nil
		},
		Relevant: func(p []float64, _ float64) bool {
			// Feature point stands in for the distance itself: the MBR
			// prefilter admits anything at or below eps.
			return p == nil || p[0] <= eps
		},
	}
}

func drain(t *testing.T, s *Sub, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				t.Fatalf("channel closed after %d of %d events", i, n)
			}
			out = append(out, ev)
		default:
			t.Fatalf("only %d of %d events delivered: %v", i, n, out)
		}
	}
	select {
	case ev := <-s.Events():
		t.Fatalf("unexpected extra event %+v", ev)
	default:
	}
	return out
}

func TestRangeMonitorEnterLeave(t *testing.T) {
	f := &fakeStore{dist: map[string]float64{"a": 1, "b": 5}}
	h := NewHub(16)
	m, err := h.Add("range", 0, f.rangeFuncs(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Members(); len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("initial members = %v, want [a]", got)
	}
	sub, snap, replay, seq := m.Subscribe(-1, 8)
	if len(snap) != 1 || replay != nil || seq != 0 {
		t.Fatalf("Subscribe = (%v, %v, %d)", snap, replay, seq)
	}

	f.set("b", 1.5) // enters
	h.NotifyWrite("b", []float64{1.5})
	f.set("a", 9) // leaves
	h.NotifyWrite("a", []float64{9})
	f.set("c", 8) // prefilter-rejected: no verification, no event
	h.NotifyWrite("c", []float64{8})

	evs := drain(t, sub, 2)
	if evs[0].Kind != Enter || evs[0].Name != "b" || evs[0].Dist != 1.5 {
		t.Fatalf("event 0 = %+v, want enter b", evs[0])
	}
	if evs[1].Kind != Leave || evs[1].Name != "a" {
		t.Fatalf("event 1 = %+v, want leave a", evs[1])
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequence numbers %d, %d; want 1, 2", evs[0].Seq, evs[1].Seq)
	}

	// Delete of a member emits leave without any engine call.
	f.del("b")
	h.NotifyDelete("b")
	evs = drain(t, sub, 1)
	if evs[0].Kind != Leave || evs[0].Name != "b" {
		t.Fatalf("delete event = %+v", evs[0])
	}
	sub.Cancel()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("cancelled subscription channel still open")
	}
}

func TestNNMonitorReEval(t *testing.T) {
	f := &fakeStore{dist: map[string]float64{"a": 1, "b": 2, "c": 3}}
	h := NewHub(16)
	evals := 0
	top2 := Funcs{
		Eval: func() ([]Member, error) {
			evals++
			f.mu.Lock()
			defer f.mu.Unlock()
			var all []Member
			for name, d := range f.dist {
				all = append(all, Member{Name: name, Dist: d})
			}
			// Tiny top-2 selection.
			for i := 0; i < len(all); i++ {
				for j := i + 1; j < len(all); j++ {
					if all[j].Dist < all[i].Dist {
						all[i], all[j] = all[j], all[i]
					}
				}
			}
			if len(all) > 2 {
				all = all[:2]
			}
			return all, nil
		},
		Relevant: func(p []float64, kth float64) bool {
			return p == nil || math.IsInf(kth, 1) || p[0] <= kth
		},
	}
	m, err := h.Add("nn", 2, top2)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, _, _ := m.Subscribe(-1, 8)
	evals = 0

	// Far outside the current 2nd-best distance: prefilter skips the eval.
	f.set("d", 50)
	h.NotifyWrite("d", []float64{50})
	if evals != 0 {
		t.Fatalf("irrelevant write triggered %d evals", evals)
	}
	drain(t, sub, 0)

	// Beats the 2nd best: displaces b.
	f.set("d", 1.5)
	h.NotifyWrite("d", []float64{1.5})
	if evals != 1 {
		t.Fatalf("relevant write triggered %d evals, want 1", evals)
	}
	evs := drain(t, sub, 2)
	if evs[0].Kind != Leave || evs[0].Name != "b" || evs[1].Kind != Enter || evs[1].Name != "d" {
		t.Fatalf("events = %+v", evs)
	}

	// Deleting a member backfills from the store.
	f.del("a")
	h.NotifyDelete("a")
	evs = drain(t, sub, 2)
	if evs[0].Kind != Leave || evs[0].Name != "a" || evs[1].Kind != Enter || evs[1].Name != "b" {
		t.Fatalf("backfill events = %+v", evs)
	}
}

func TestSubscribeReplay(t *testing.T) {
	f := &fakeStore{dist: map[string]float64{}}
	h := NewHub(4) // retain only 4 events
	m, err := h.Add("range", 0, f.rangeFuncs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("s%d", i)
		f.set(name, 1)
		h.NotifyWrite(name, []float64{1})
	}
	// Resume within the retained window: gapless replay, no snapshot.
	sub, snap, replay, seq := m.Subscribe(4, 8)
	if snap != nil || len(replay) != 2 || replay[0].Seq != 5 || replay[1].Seq != 6 || seq != 6 {
		t.Fatalf("replay subscribe = (%v, %v, %d)", snap, replay, seq)
	}
	sub.Cancel()
	// Resume past the retained window: snapshot fallback.
	sub, snap, replay, _ = m.Subscribe(1, 8)
	if replay != nil || len(snap) != 6 {
		t.Fatalf("stale resume = (%v, %v)", snap, replay)
	}
	sub.Cancel()
	// Up to date: nothing to do.
	sub, snap, replay, _ = m.Subscribe(6, 8)
	if snap != nil || replay != nil {
		t.Fatalf("current resume = (%v, %v)", snap, replay)
	}
	sub.Cancel()
}

func TestSlowSubscriberDrops(t *testing.T) {
	f := &fakeStore{dist: map[string]float64{}}
	h := NewHub(0)
	m, err := h.Add("range", 0, f.rangeFuncs(2))
	if err != nil {
		t.Fatal(err)
	}
	sub, _, _, _ := m.Subscribe(-1, 2)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("s%d", i)
		f.set(name, 1)
		h.NotifyWrite(name, []float64{1})
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	evs := drain(t, sub, 2)
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("delivered events %+v", evs)
	}
}

func TestHubRemove(t *testing.T) {
	f := &fakeStore{dist: map[string]float64{"a": 1}}
	h := NewHub(0)
	m, err := h.Add("range", 0, f.rangeFuncs(2))
	if err != nil {
		t.Fatal(err)
	}
	sub, _, _, _ := m.Subscribe(-1, 2)
	if !h.Remove(m.ID) {
		t.Fatal("Remove reported unknown monitor")
	}
	if h.Remove(m.ID) {
		t.Fatal("double Remove succeeded")
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscriber channel survived monitor removal")
	}
	// Notifications after removal are no-ops.
	h.NotifyWrite("a", nil)
	h.NotifyDelete("a")
	if got := len(h.List()); got != 0 {
		t.Fatalf("List after remove has %d monitors", got)
	}
}
